#include "swifi/stress.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "components/event_mgr.hpp"
#include "components/lock.hpp"
#include "components/mem_mgr.hpp"
#include "components/ramfs.hpp"
#include "components/system.hpp"
#include "components/trace_check.hpp"
#include "kernel/fault.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace sg::swifi {

using components::System;
using components::SystemConfig;
using kernel::CompId;
using kernel::Value;

const char* to_string(StressMode mode) {
  switch (mode) {
    case StressMode::kCrashLoop: return "crash-loop";
    case StressMode::kBurst: return "burst";
    case StressMode::kFaultInRecovery: return "fault-in-recovery";
    case StressMode::kIndependentBurst: return "independent-burst";
  }
  return "?";
}

bool parse_stress_mode(const std::string& text, StressMode& mode) {
  if (text == "crash-loop") { mode = StressMode::kCrashLoop; return true; }
  if (text == "burst") { mode = StressMode::kBurst; return true; }
  if (text == "fault-in-recovery") { mode = StressMode::kFaultInRecovery; return true; }
  if (text == "independent-burst") { mode = StressMode::kIndependentBurst; return true; }
  return false;
}

namespace {

/// Copies the end-of-run observables out of the system into the report.
void finalize(System& sys, CompId escalation_comp, StressReport& report) {
  if (sys.config().trace) {
    const trace::Tracer::Snapshot snap = sys.kernel().tracer().snapshot();
    const trace::NameFn names = components::comp_namer(sys);
    report.trace_normalized = trace::format_normalized(snap.events, names);
    std::ostringstream json;
    trace::write_chrome_trace(json, snap, names);
    report.trace_chrome_json = json.str();
    report.trace_truncated = snap.truncated();
    if (report.crash.empty()) {
      trace::InvariantChecker checker(components::checker_hooks(sys));
      report.trace_violations = checker.check(snap);
      report.trace_max_concurrent_domains = checker.max_concurrent_domains();
    }
  }
  report.max_concurrent_recoveries = sys.kernel().max_concurrent_recoveries();
  report.stats = sys.supervision().stats();
  report.events = sys.supervision().events();
  report.reentrant_reboots = sys.coordinator().reentrant_reboots();
  report.replay_restarts = sys.coordinator().replay_restarts();
  report.total_reboots = sys.kernel().total_reboots();

  // The escalation chain fired in order iff the reboot-action events of the
  // target component never step *down* a level before the first readmit.
  report.escalation_in_order = true;
  int last_level = 0;
  for (const auto& event : report.events) {
    if (event.comp != escalation_comp) continue;
    if (event.what == "readmit") break;
    if (event.what != "micro-reboot" && event.what != "group-reboot" &&
        event.what != "quarantine") {
      continue;
    }
    const int level = static_cast<int>(event.level);
    if (level < last_level) report.escalation_in_order = false;
    last_level = level;
  }
}

/// crash-loop: hammer the memory manager until it is quarantined, watch
/// clients fail fast, then readmit and verify service resumes. mman is the
/// target because ramfs is registered as its dependent, so the group-reboot
/// stage of the chain actually reboots a group.
StressReport run_crash_loop(const StressConfig& config) {
  StressReport report;
  SystemConfig sys_config;
  sys_config.cores = 1;  // Golden-trace determinism.
  sys_config.seed = config.seed;
  sys_config.trace = config.trace || sys_config.trace;
  sys_config.supervision.loop_threshold = 3;
  sys_config.supervision.loop_window = 1'000'000;
  sys_config.supervision.backoff_initial = 50;
  sys_config.supervision.backoff_max = 400;
  sys_config.supervision.trips_per_level = 2;
  report.policy = sys_config.supervision;

  System sys(sys_config);
  auto& kern = sys.kernel();
  auto& mm_app = sys.create_app("mm-app");
  auto& fs_app = sys.create_app("fs-app");
  const CompId target = sys.service_component("mman").id();

  bool readmitted = false;
  bool finished = false;

  // The client whose service crash-loops: get/release page cycles. Once the
  // supervisor quarantines mman every call fails fast with QuarantinedError
  // (graceful degradation); after the manual readmit the calls succeed again.
  kern.thd_create("mm-client", 10, [&] {
    components::MmClient mm(sys.invoker(mm_app, "mman"));
    while (!finished) {
      try {
        const Value root = mm.get_page(mm_app.id(), 0x400000);
        if (root <= 0) ++report.violations;
        if (mm.release_page(mm_app.id(), root) != kernel::kOk) ++report.violations;
        if (readmitted && ++report.post_readmit_successes >= 5) finished = true;
      } catch (const kernel::QuarantinedError&) {
        ++report.quarantine_failfasts;
      }
      kern.block_current_until(kern.clock().now() + 8);
    }
  });

  // An innocent bystander on the dependent service: group reboots of mman
  // take ramfs down too; the workload must stay correct throughout.
  kern.thd_create("fs-client", 10, [&] {
    components::FsClient fs(sys.invoker(fs_app, "ramfs"), sys.cbufs(), fs_app.id());
    for (int round = 0; !finished; ++round) {
      const Value fd = fs.open(900 + round % 4);
      const std::string chunk = "r" + std::to_string(round) + ";";
      if (fs.write(fd, chunk) != static_cast<Value>(chunk.size())) ++report.violations;
      fs.lseek(fd, 0);
      if (fs.read(fd, 64).substr(0, chunk.size()) != chunk) ++report.violations;
      fs.close(fd);
      kern.block_current_until(kern.clock().now() + 6);
    }
  });

  // The adversary: inject fail-stop faults into mman until the escalation
  // chain quarantines it, wait for the client to rack up fail-fasts, then
  // readmit.
  kern.thd_create("adversary", 5, [&] {
    Rng rng(config.seed ^ 0xad5e);
    while (sys.supervision().level_of(target) != supervisor::Level::kQuarantined) {
      kern.block_current_until(kern.clock().now() + 15 + rng.next_below(15));
      kern.inject_crash(target);
    }
    while (report.quarantine_failfasts < 3) kern.block_current_until(kern.clock().now() + 20);
    sys.supervision().readmit(target);
    readmitted = true;
  });

  try {
    kern.run();
    report.completed = true;
  } catch (const kernel::SystemCrash& crash) {
    report.crash = crash.what();
  }
  finalize(sys, target, report);
  return report;
}

/// burst: volleys of back-to-back faults (three in the same virtual instant)
/// into a rotating target while lock/event/file workloads for all of them
/// run. Every volley trips the crash-loop detector (threshold 3), so the run
/// exercises backoff holds and, on the second volley per service, the group
/// reboot level -- but never quarantine (two trips per service).
StressReport run_burst(const StressConfig& config) {
  StressReport report;
  SystemConfig sys_config;
  sys_config.cores = 1;  // Golden-trace determinism.
  sys_config.seed = config.seed;
  sys_config.trace = config.trace || sys_config.trace;
  sys_config.supervision.loop_threshold = 3;
  sys_config.supervision.loop_window = 200;
  sys_config.supervision.backoff_initial = 40;
  sys_config.supervision.backoff_max = 320;
  sys_config.supervision.trips_per_level = 2;
  report.policy = sys_config.supervision;

  System sys(sys_config);
  auto& kern = sys.kernel();
  auto& lock_app = sys.create_app("lock-app");
  auto& evt_app_a = sys.create_app("evt-a");
  auto& evt_app_b = sys.create_app("evt-b");
  auto& fs_app = sys.create_app("fs-app");

  constexpr int kRounds = 150;
  int active_workers = 5;

  // Lock pair: mutual exclusion must hold across every volley.
  auto lock = std::make_shared<components::LockClient>(sys.invoker(lock_app, "lock"), kern);
  auto lock_id = std::make_shared<Value>(0);
  auto in_critical = std::make_shared<int>(0);
  for (int worker = 0; worker < 2; ++worker) {
    kern.thd_create("lock-worker", 10, [&, worker] {
      if (worker == 0) *lock_id = lock->alloc(lock_app.id());
      for (int round = 0; round < kRounds; ++round) {
        if (*lock_id <= 0) {
          kern.yield();
          continue;
        }
        if (lock->take(lock_app.id(), *lock_id) != kernel::kOk) ++report.violations;
        if (++*in_critical != 1) ++report.violations;
        kern.yield();
        --*in_critical;
        if (lock->release(lock_app.id(), *lock_id) != kernel::kOk) ++report.violations;
        kern.yield();
      }
      --active_workers;
    });
  }

  // Event pipeline: exact trigger accounting.
  auto evtid = std::make_shared<Value>(0);
  kern.thd_create("evt-waiter", 10, [&] {
    components::EvtClient evt(sys.invoker(evt_app_a, "evt"));
    *evtid = evt.split(evt_app_a.id());
    Value total = 0;
    while (total < kRounds) {
      const Value got = evt.wait(evt_app_a.id(), *evtid);
      if (got < 0) {
        ++report.violations;
        break;
      }
      total += got;
    }
    if (total != kRounds) ++report.violations;
    --active_workers;
  });
  kern.thd_create("evt-trigger", 11, [&] {
    components::EvtClient evt(sys.invoker(evt_app_b, "evt"));
    kern.yield();
    for (int round = 0; round < kRounds; ++round) {
      if (evt.trigger(evt_app_b.id(), *evtid) != kernel::kOk) ++report.violations;
      kern.yield();
    }
    --active_workers;
  });

  // File worker: write/readback cycles.
  kern.thd_create("fs-worker", 10, [&] {
    components::FsClient fs(sys.invoker(fs_app, "ramfs"), sys.cbufs(), fs_app.id());
    for (int round = 0; round < kRounds; ++round) {
      const Value fd = fs.open(700 + round % 4);
      const std::string chunk = "b" + std::to_string(round) + ";";
      if (fs.write(fd, chunk) != static_cast<Value>(chunk.size())) ++report.violations;
      fs.lseek(fd, 0);
      if (fs.read(fd, 64).substr(0, chunk.size()) != chunk) ++report.violations;
      fs.close(fd);
      kern.yield();
    }
    --active_workers;
  });

  // The adversary fires volleys of three back-to-back crashes into one
  // service at a time (no virtual time passes inside a volley).
  kern.thd_create("adversary", 5, [&] {
    Rng rng(config.seed ^ 0xb0b5);
    const char* targets[] = {"lock", "evt", "ramfs"};
    for (int volley = 0; volley < 6 && active_workers > 0; ++volley) {
      kern.block_current_until(kern.clock().now() + 300 + rng.next_below(150));
      if (active_workers == 0) break;
      const CompId target = sys.service_component(targets[volley % 3]).id();
      for (int shot = 0; shot < 3; ++shot) kern.inject_crash(target);
    }
  });

  try {
    kern.run();
    report.completed = true;
  } catch (const kernel::SystemCrash& crash) {
    report.crash = crash.what();
  }
  finalize(sys, sys.service_component("lock").id(), report);
  return report;
}

/// fault-in-recovery: with the eager (T0) recovery policy, an interposer on
/// the lock component's creation entry point throws a fail-stop fault the
/// next time it is dispatched *after the adversary arms it* -- which is
/// exactly the eager descriptor replay running on behalf of the previous
/// fault. The supervisor charges it as a fault during recovery and reboots
/// again; the coordinator defers the nested reboot and restarts its sweep.
StressReport run_fault_in_recovery(const StressConfig& config) {
  StressReport report;
  SystemConfig sys_config;
  sys_config.cores = 1;  // Golden-trace determinism.
  sys_config.seed = config.seed;
  sys_config.trace = config.trace || sys_config.trace;
  sys_config.policy = c3::RecoveryPolicy::kEager;
  report.policy = sys_config.supervision;  // Transparent: plain C3 reboots.

  System sys(sys_config);
  auto& kern = sys.kernel();
  auto& app_a = sys.create_app("lock-a");
  auto& app_b = sys.create_app("lock-b");
  auto& lock_comp = sys.lock();
  const CompId target = lock_comp.id();

  auto armed = std::make_shared<bool>(false);
  auto fired = std::make_shared<bool>(false);
  auto allocs = std::make_shared<int>(0);
  auto prev = std::make_shared<kernel::Component::Handler>();
  *prev = lock_comp.replace_fn(
      "lock_alloc", [armed, fired, allocs, target, prev](kernel::CallCtx& ctx,
                                                         const kernel::Args& args) -> Value {
        ++*allocs;
        if (*armed && !*fired) {
          *fired = true;
          throw kernel::ComponentFault(target, kernel::FaultKind::kInjected,
                                       "injected fault during descriptor replay");
        }
        return (*prev)(ctx, args);
      });

  constexpr int kRounds = 60;
  int done_workers = 0;
  for (int worker = 0; worker < 2; ++worker) {
    auto& app = worker == 0 ? app_a : app_b;
    kern.thd_create("lock-worker", 10, [&, worker] {
      components::LockClient lock(sys.invoker(app, "lock"), kern);
      // Two descriptors per client so the eager sweep has real replay work.
      // Each worker cycles its own lock (no cross-worker contention: the
      // check here is that every take/release succeeds across the nested
      // fault, i.e. replay reconstructed both apps' descriptors).
      const Value own = lock.alloc(app.id());
      const Value spare = lock.alloc(app.id());
      if (own <= 0 || spare <= 0) ++report.violations;
      for (int round = 0; round < kRounds; ++round) {
        if (lock.take(app.id(), own) != kernel::kOk) ++report.violations;
        kern.yield();
        if (lock.release(app.id(), own) != kernel::kOk) ++report.violations;
        kern.yield();
      }
      ++done_workers;
    });
  }

  kern.thd_create("adversary", 5, [&] {
    kern.block_current_until(kern.clock().now() + 150);
    *armed = true;  // The next lock_alloc dispatch is the eager replay.
    kern.inject_crash(target);
    // A later plain fault confirms recovery still works after the nested one.
    kern.block_current_until(kern.clock().now() + 120);
    if (done_workers < 2) kern.inject_crash(target);
  });

  try {
    kern.run();
    report.completed = true;
  } catch (const kernel::SystemCrash& crash) {
    report.crash = crash.what();
  }
  report.server_allocs = *allocs;
  finalize(sys, target, report);
  return report;
}

/// Field-wise sum for aggregating supervisor stats across episodes.
void add_stats(supervisor::Stats& into, const supervisor::Stats& from) {
  into.faults += from.faults;
  into.micro_reboots += from.micro_reboots;
  into.group_reboots += from.group_reboots;
  into.group_members_rebooted += from.group_members_rebooted;
  into.quarantines += from.quarantines;
  into.readmits += from.readmits;
  into.crash_loop_trips += from.crash_loop_trips;
  into.backoff_holds += from.backoff_holds;
  into.faults_during_recovery += from.faults_during_recovery;
}

/// independent-burst: every episode is a fresh cores>=2 machine where an
/// adversary fires simultaneous faults into lock and ramfs — two components
/// whose dependency closures are disjoint — while an untouched event-manager
/// workload keeps serving. A reboot-hook barrier stretches the first
/// recovery until the second one lands (bounded by a host timeout), so the
/// episode reliably exercises two concurrently held recovery domains; the
/// kernel's max_concurrent_recoveries high-water and the trace checker's
/// domain bracket count both prove the overlap.
StressReport run_independent_burst(const StressConfig& config) {
  StressReport report;
  report.policy = supervisor::Policy{};  // Transparent: plain C3 micro-reboots.
  report.completed = true;
  report.escalation_in_order = true;

  const int cores = std::max(2, config.cores);
  const int episodes = std::max(1, config.episodes);
  for (int ep = 0; ep < episodes; ++ep) {
    StressReport ep_report;
    SystemConfig sys_config;
    sys_config.cores = cores;
    sys_config.seed = config.seed + static_cast<std::uint64_t>(ep) * 0x9e3779b9u;
    sys_config.trace = config.trace || sys_config.trace;
    System sys(sys_config);
    auto& kern = sys.kernel();
    auto& lock_app = sys.create_app("lock-app");
    auto& fs_app = sys.create_app("fs-app");
    auto& evt_app_a = sys.create_app("evt-a");
    auto& evt_app_b = sys.create_app("evt-b");
    const CompId lock_id = sys.service_component("lock").id();
    const CompId ramfs_id = sys.service_component("ramfs").id();

    // Episode-shared state. Everything touched from more than one sim thread
    // is atomic (sim threads are host threads on distinct cores here) or
    // guarded by `mu`.
    auto mu = std::make_shared<std::mutex>();
    auto cv = std::make_shared<std::condition_variable>();
    auto in_recovery = std::make_shared<int>(0);  // Under mu.
    auto done = std::make_shared<std::atomic<bool>>(false);
    auto waiter_done = std::make_shared<std::atomic<bool>>(false);
    auto violations = std::make_shared<std::atomic<int>>(0);
    auto bystander_ops = std::make_shared<std::atomic<int>>(0);
    auto bystander_during = std::make_shared<std::atomic<int>>(0);

    // The overlap barrier: the first of the pair of recoveries dwells in its
    // reboot hook until the second arrives (its domain is disjoint, so the
    // kernel admits it concurrently). The timeout keeps a volley whose
    // partner fault never fired from stalling the episode, and the short
    // post-barrier dwell widens the window the bystander availability
    // counter samples.
    kern.add_reboot_hook([mu, cv, in_recovery, lock_id, ramfs_id](CompId comp) {
      if (comp != lock_id && comp != ramfs_id) return;
      std::unique_lock<std::mutex> hold(*mu);
      ++*in_recovery;
      if (*in_recovery >= 2) {
        cv->notify_all();
      } else {
        cv->wait_for(hold, std::chrono::milliseconds(250),
                     [&] { return *in_recovery >= 2; });
      }
      hold.unlock();
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
      hold.lock();
      --*in_recovery;
    });

    // Hammer workers on the two fault targets. Yield-driven (no virtual-time
    // blocking): a thread dwelling in the barrier above pins its core, so
    // the clock's idle-jump consensus never fires mid-volley; runnable
    // threads must not depend on time advancing to reach their target.
    kern.thd_create("lock-worker", 10, [&, violations, done] {
      components::LockClient lock(sys.invoker(lock_app, "lock"), kern);
      const Value id = lock.alloc(lock_app.id());
      if (id <= 0) violations->fetch_add(1);
      while (!done->load()) {
        if (lock.take(lock_app.id(), id) != kernel::kOk) violations->fetch_add(1);
        if (lock.release(lock_app.id(), id) != kernel::kOk) violations->fetch_add(1);
        kern.yield();
      }
    });
    kern.thd_create("fs-worker", 10, [&, violations, done] {
      components::FsClient fs(sys.invoker(fs_app, "ramfs"), sys.cbufs(), fs_app.id());
      for (int round = 0; !done->load(); ++round) {
        const Value fd = fs.open(800 + round % 4);
        const std::string chunk = "i" + std::to_string(round % 100) + ";";
        if (fs.write(fd, chunk) != static_cast<Value>(chunk.size())) violations->fetch_add(1);
        fs.lseek(fd, 0);
        if (fs.read(fd, 64).substr(0, chunk.size()) != chunk) violations->fetch_add(1);
        fs.close(fd);
        kern.yield();
      }
    });

    // The untouched bystander: an event-manager ping-pong whose components
    // (evt, sched) are outside both fault closures, so its requests must
    // keep completing while lock and ramfs recover. Ops that complete while
    // a recovery dwells in the barrier count as served-during-recovery.
    auto evtid = std::make_shared<std::atomic<Value>>(0);
    kern.thd_create("evt-waiter", 10, [&, violations, done, waiter_done, bystander_ops,
                                       bystander_during, in_recovery, mu, evtid] {
      components::EvtClient evt(sys.invoker(evt_app_a, "evt"));
      evtid->store(evt.split(evt_app_a.id()));
      while (!done->load()) {
        const Value got = evt.wait(evt_app_a.id(), evtid->load());
        if (got < 0) {
          violations->fetch_add(1);
          break;
        }
        bystander_ops->fetch_add(1);
        bool recovering;
        {
          std::lock_guard<std::mutex> guard(*mu);
          recovering = *in_recovery > 0;
        }
        if (recovering) bystander_during->fetch_add(1);
      }
      waiter_done->store(true);
    });
    kern.thd_create("evt-trigger", 10, [&, violations, waiter_done, evtid] {
      components::EvtClient evt(sys.invoker(evt_app_b, "evt"));
      kern.yield();
      // Keep feeding until the waiter has actually left its loop, so the
      // final wait is always released and the episode can drain.
      while (!waiter_done->load()) {
        const Value id = evtid->load();
        if (id > 0 && evt.trigger(evt_app_b.id(), id) != kernel::kOk) {
          violations->fetch_add(1);
        }
        kern.yield();
      }
    });

    // The adversaries: inject_crash vectors the fault *on the calling
    // thread* (the injector runs the whole recovery), so simultaneous
    // independent faults need one injector per target, released in lockstep
    // by a pacer. Each volley both injectors fire within a few host
    // microseconds of each other on different cores; the disjoint closures
    // mean the kernel admits both recoveries concurrently and the reboot-
    // hook barrier above makes them meet.
    constexpr int kVolleys = 4;
    auto volley = std::make_shared<std::atomic<int>>(0);
    auto acks = std::make_shared<std::atomic<int>>(0);
    for (const CompId target : {lock_id, ramfs_id}) {
      // Same priority as the workloads: every thread in this episode is
      // yield-driven, and the strict-priority scheduler would let a hotter-
      // priority spinner starve the bystander pipeline entirely.
      kern.thd_create("adversary", 10, [&, done, volley, acks, target] {
        int seen = 0;
        while (!done->load() && seen < kVolleys) {
          const int cur = volley->load();
          if (cur <= seen) {
            kern.yield();
            continue;
          }
          seen = cur;
          kern.inject_crash(target);
          acks->fetch_add(1);
        }
      });
    }
    kern.thd_create("pacer", 10, [&, done, volley, acks] {
      for (int round = 1; round <= kVolleys; ++round) {
        for (int spin = 0; spin < 120; ++spin) kern.yield();
        volley->store(round);
        while (acks->load() < 2 * round && !done->load()) kern.yield();
      }
      for (int spin = 0; spin < 200; ++spin) kern.yield();
      done->store(true);
    });

    try {
      kern.run();
      ep_report.completed = true;
    } catch (const kernel::SystemCrash& crash) {
      ep_report.crash = crash.what();
    }
    ep_report.violations = violations->load();
    finalize(sys, lock_id, ep_report);

    // Merge the episode into the aggregate report.
    ++report.episodes;
    if (ep_report.max_concurrent_recoveries >= 2) ++report.overlap_episodes;
    report.max_concurrent_recoveries =
        std::max(report.max_concurrent_recoveries, ep_report.max_concurrent_recoveries);
    report.trace_max_concurrent_domains =
        std::max(report.trace_max_concurrent_domains, ep_report.trace_max_concurrent_domains);
    report.bystander_ops += bystander_ops->load();
    report.bystander_ops_during_recovery += bystander_during->load();
    report.violations += ep_report.violations;
    add_stats(report.stats, ep_report.stats);
    report.reentrant_reboots += ep_report.reentrant_reboots;
    report.replay_restarts += ep_report.replay_restarts;
    report.total_reboots += ep_report.total_reboots;
    for (const std::string& violation : ep_report.trace_violations) {
      report.trace_violations.push_back("episode " + std::to_string(ep) + ": " + violation);
    }
    report.trace_truncated = report.trace_truncated || ep_report.trace_truncated;
    if (ep == 0) {
      report.trace_normalized = ep_report.trace_normalized;
      report.trace_chrome_json = ep_report.trace_chrome_json;
      report.events = ep_report.events;
    }
    if (!ep_report.completed) {
      report.completed = false;
      if (report.crash.empty()) {
        report.crash = "episode " + std::to_string(ep) + ": " + ep_report.crash;
      }
    }
  }
  return report;
}

}  // namespace

StressReport run_stress(StressMode mode, const StressConfig& config) {
  switch (mode) {
    case StressMode::kCrashLoop: return run_crash_loop(config);
    case StressMode::kBurst: return run_burst(config);
    case StressMode::kFaultInRecovery: return run_fault_in_recovery(config);
    case StressMode::kIndependentBurst: return run_independent_burst(config);
  }
  return {};
}

std::string format_stress_report(StressMode mode, const StressReport& report) {
  std::ostringstream oss;
  oss << "stress mode: " << to_string(mode) << "\n";
  TextTable table;
  table.add_row({"Counter", "Value"});
  const auto& stats = report.stats;
  table.add_row({"faults vectored", std::to_string(stats.faults)});
  table.add_row({"level-0 micro-reboots", std::to_string(stats.micro_reboots)});
  table.add_row({"level-1 group reboots", std::to_string(stats.group_reboots)});
  table.add_row({"  dependents in groups", std::to_string(stats.group_members_rebooted)});
  table.add_row({"level-2 quarantines", std::to_string(stats.quarantines)});
  table.add_row({"readmits", std::to_string(stats.readmits)});
  table.add_row({"crash-loop trips", std::to_string(stats.crash_loop_trips)});
  table.add_row({"backoff holds", std::to_string(stats.backoff_holds)});
  table.add_row({"faults during recovery", std::to_string(stats.faults_during_recovery)});
  table.add_row({"re-entrant reboots (coord)", std::to_string(report.reentrant_reboots)});
  table.add_row({"replay sweep restarts", std::to_string(report.replay_restarts)});
  table.add_row({"total micro-reboots", std::to_string(report.total_reboots)});
  table.add_row({"quarantine fail-fasts", std::to_string(report.quarantine_failfasts)});
  table.add_row({"post-readmit successes", std::to_string(report.post_readmit_successes)});
  table.add_row({"workload violations", std::to_string(report.violations)});
  if (mode == StressMode::kIndependentBurst) {
    table.add_row({"episodes", std::to_string(report.episodes)});
    table.add_row({"episodes with overlap", std::to_string(report.overlap_episodes)});
    table.add_row({"max concurrent recoveries", std::to_string(report.max_concurrent_recoveries)});
    table.add_row({"trace-proven concurrent domains",
                   std::to_string(report.trace_max_concurrent_domains)});
    table.add_row({"bystander ops served", std::to_string(report.bystander_ops)});
    table.add_row({"  ...during a recovery", std::to_string(report.bystander_ops_during_recovery)});
  }
  oss << table.render();
  oss << "escalation in order: " << (report.escalation_in_order ? "yes" : "NO") << "\n";
  oss << "completed: " << (report.completed ? "yes" : ("NO -- " + report.crash)) << "\n";
  return oss.str();
}

}  // namespace sg::swifi
