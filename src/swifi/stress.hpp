#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "supervisor/supervisor.hpp"

namespace sg::swifi {

/// The supervised stress campaigns (--mode= of bench_table2_swifi). Unlike
/// the Table II campaign -- one random bit flip per fresh machine -- these
/// modes hammer one machine with *correlated* fail-stop faults to exercise
/// the recovery supervisor's policies:
///   kCrashLoop       : repeated faults in one component until the escalation
///                      chain runs micro-reboot -> group reboot -> quarantine,
///                      then a manual readmit restores service.
///   kBurst           : back-to-back fault volleys into rotating services
///                      while workloads for all of them run concurrently.
///   kFaultInRecovery : a fault is injected *into the replay itself* (the
///                      eager descriptor sweep crashes the freshly rebooted
///                      server), exercising re-entrant recovery.
///   kIndependentBurst: simultaneous faults into components with *disjoint*
///                      dependency closures (lock and ramfs) at cores>=2, so
///                      their recovery domains are claimed and micro-rebooted
///                      concurrently while untouched services keep serving.
///                      The first three modes pin cores=1 for golden-trace
///                      determinism; this one exists to prove the concurrency.
enum class StressMode { kCrashLoop, kBurst, kFaultInRecovery, kIndependentBurst };

const char* to_string(StressMode mode);
/// Parses "crash-loop" / "burst" / "fault-in-recovery" / "independent-burst".
bool parse_stress_mode(const std::string& text, StressMode& mode);

struct StressConfig {
  std::uint64_t seed = 2016;
  /// Capture the run's event trace and check recovery invariants over it.
  bool trace = false;
  /// kIndependentBurst only: cores per episode (clamped to >= 2) and the
  /// number of fresh-machine episodes to aggregate.
  int cores = 4;
  int episodes = 6;
};

/// Everything a stress run observed; the supervisor tests assert on these
/// fields and bench_table2_swifi prints them.
struct StressReport {
  supervisor::Policy policy;            ///< Policy the run used.
  supervisor::Stats stats;              ///< Final supervisor counters.
  std::vector<supervisor::Event> events;
  int reentrant_reboots = 0;            ///< RecoveryCoordinator counter.
  int replay_restarts = 0;              ///< RecoveryCoordinator counter.
  int total_reboots = 0;
  int violations = 0;                   ///< Workload invariant violations.
  int quarantine_failfasts = 0;         ///< Calls rejected via QuarantinedError.
  int post_readmit_successes = 0;       ///< Successful calls after readmit().
  int server_allocs = 0;                ///< Target-server creation dispatches
                                        ///< (bounds replay duplication).
  bool completed = false;               ///< kernel.run() returned normally.
  bool escalation_in_order = false;     ///< Levels fired in monotone order.
  std::string crash;                    ///< Non-empty if a SystemCrash escaped.
  // kIndependentBurst only (aggregated across episodes):
  int episodes = 0;                     ///< Fresh-machine episodes run.
  int overlap_episodes = 0;             ///< Episodes whose kernel high-water
                                        ///< reached >= 2 concurrent recoveries.
  int max_concurrent_recoveries = 0;    ///< Kernel high-water across episodes.
  int trace_max_concurrent_domains = 0; ///< Trace-proven high-water (checker).
  int bystander_ops = 0;                ///< Untouched-service (evt) requests
                                        ///< completed over the whole run.
  int bystander_ops_during_recovery = 0;  ///< ...completed while at least one
                                          ///< recovery domain was in flight.
  // Captured only with StressConfig::trace:
  std::string trace_normalized;         ///< Normalized event stream.
  std::string trace_chrome_json;        ///< Chrome trace_event export.
  std::vector<std::string> trace_violations;  ///< Recovery-invariant breaks.
  bool trace_truncated = false;         ///< Ring overflow dropped events.
};

StressReport run_stress(StressMode mode, const StressConfig& config = {});

std::string format_stress_report(StressMode mode, const StressReport& report);

}  // namespace sg::swifi
