#include "swifi/swifi.hpp"

#include <sstream>

#include "c3stubs/c3_stubs.hpp"
#include "components/trace_check.hpp"
#include "swifi/workloads.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace sg::swifi {

using components::FtMode;
using components::System;
using components::SystemConfig;
using kernel::Reg;
using kernel::ThreadId;

const char* to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::kRecovered: return "recovered";
    case Outcome::kDegraded: return "degraded";
    case Outcome::kSegfault: return "segfault";
    case Outcome::kPropagated: return "propagated";
    case Outcome::kOther: return "other";
    case Outcome::kUndetected: return "undetected";
  }
  return "?";
}

Outcome Campaign::run_episode(const std::string& service, std::uint64_t episode,
                              EpisodeTrace* trace_out) {
  // Fresh machine per injection: "after each workload execution, the system
  // is rebooted to clear any residual errors before the next run" (§V-D).
  SystemConfig sys_config;
  sys_config.seed = config_.seed ^ (episode * 0x9e3779b97f4a7c15ULL);
  sys_config.mode = config_.mode;
  sys_config.policy = config_.policy;
  sys_config.trace = config_.trace || sys_config.trace;
  System sys(sys_config);
  if (config_.mode == FtMode::kC3) c3stubs::install_c3_stubs(sys);

  WorkloadState state;
  install_workload(sys, service, state);
  SG_ASSERT(!state.victims.empty());

  auto& kern = sys.kernel();
  const kernel::CompId target = sys.service_component(service).id();

  Rng rng(sys_config.seed ^ 0xdead10cc);
  bool flip_applied = false;

  // The SWIFI context: highest priority, periodically scheduled via the
  // virtual clock (the paper's separate injector component). It arms one
  // single-bit flip (fault mask 0xFFFFFFFF: any of 32 bits; any of the 8
  // registers, §V-A) that materializes while the victim executes inside the
  // target component.
  kern.thd_create("swifi", 2, [&] {
    kern.block_current_until(kern.now() + 60 + rng.next_below(300));
    const ThreadId victim =
        state.victims[static_cast<std::size_t>(rng.next_below(state.victims.size()))];
    const Reg reg = static_cast<Reg>(rng.next_below(kernel::kNumRegisters));
    const int bit = static_cast<int>(rng.next_below(kernel::kRegisterBits));
    const int delay_ops = static_cast<int>(rng.next_below(24));
    kernel::RegisterFile& regs = kern.thread_registers(victim);
    regs.arm_flip(target, reg, bit, delay_ops);
    // Observe until the flip lands or the workload finishes.
    for (int window = 0; window < 64; ++window) {
      kern.block_current_until(kern.now() + 120);
      if (regs.flip_was_applied()) {
        flip_applied = true;
        break;
      }
      if (state.done()) break;
    }
    flip_applied = flip_applied || regs.flip_was_applied();
  });

  // Single exit so the episode's trace is captured on every path, including
  // whole-system crashes (exactly the episodes worth post-morteming).
  auto finalize = [&](Outcome outcome, bool crashed) {
    if (sys.config().trace && trace_out != nullptr) {
      const trace::Tracer::Snapshot snap = kern.tracer().snapshot();
      const trace::NameFn names = components::comp_namer(sys);
      trace_out->normalized = trace::format_normalized(snap.events, names);
      std::ostringstream json;
      trace::write_chrome_trace(json, snap, names);
      trace_out->chrome_json = json.str();
      trace_out->truncated = snap.truncated();
      if (!crashed) {
        // A crash stops the log mid-recovery; the invariants only promise
        // anything about runs the machine survived.
        trace::InvariantChecker checker(components::checker_hooks(sys));
        trace_out->violations = checker.check(snap);
      }
    }
    return outcome;
  };

  const int reboots_before = kern.total_reboots();
  try {
    kern.run();
  } catch (const kernel::SystemCrash& crash) {
    switch (crash.kind()) {
      case kernel::CrashKind::kStackSegfault:
        return finalize(Outcome::kSegfault, true);
      case kernel::CrashKind::kPropagated:
        return finalize(Outcome::kPropagated, true);
      case kernel::CrashKind::kHang:
      case kernel::CrashKind::kDeadlock:
      case kernel::CrashKind::kDoubleFault:
      case kernel::CrashKind::kQuarantined:
        return finalize(Outcome::kOther, true);
    }
    return finalize(Outcome::kOther, true);
  }

  for (const ThreadId victim : state.victims) {
    flip_applied = flip_applied || kern.thread_registers(victim).flip_was_applied();
  }
  if (!flip_applied) return finalize(Outcome::kUndetected, false);
  if (kern.total_reboots() > reboots_before) {
    // The fault was detected and a micro-reboot + interface-driven recovery
    // ran; success means the workload then completed with its invariants
    // intact ("continued execution that abides by the target component and
    // workload specifications post-recovery", §V-D). A workload failure the
    // coordinator explicitly flagged as degraded (the substrate lost state
    // and recovery fell back) is reported as such, not lumped into "other".
    if (state.correct && state.done()) return finalize(Outcome::kRecovered, false);
    if (sys.coordinator().degraded()) return finalize(Outcome::kDegraded, false);
    return finalize(Outcome::kOther, false);
  }
  // The flip landed but was absorbed (dead register or overwritten value).
  return finalize(Outcome::kUndetected, false);
}

CampaignRow Campaign::run_service(const std::string& service) {
  CampaignRow row;
  row.component = service;
  for (int episode = 0; episode < config_.injections; ++episode) {
    const Outcome outcome = run_episode(service, static_cast<std::uint64_t>(episode));
    ++row.injected;
    switch (outcome) {
      case Outcome::kRecovered: ++row.recovered; break;
      case Outcome::kDegraded: ++row.degraded; break;
      case Outcome::kSegfault: ++row.segfault; break;
      case Outcome::kPropagated: ++row.propagated; break;
      case Outcome::kOther: ++row.other; break;
      case Outcome::kUndetected: ++row.undetected; break;
    }
  }
  return row;
}

std::vector<CampaignRow> Campaign::run_all() {
  std::vector<CampaignRow> rows;
  // The paper's six targets, plus the recovery substrate itself: faults in
  // the storage component exercise the rebuild/degradation machinery.
  for (const char* service : {"sched", "mman", "ramfs", "lock", "evt", "tmr", "storage"}) {
    rows.push_back(run_service(service));
  }
  return rows;
}

std::string format_table2(const std::vector<CampaignRow>& rows) {
  TextTable table;
  table.add_row({"System Component", "Injected", "Recovered Faults", "Degraded",
                 "Not recovered (segfault)", "Not recovered (propagated)",
                 "Not recovered (other reason)", "Undetected", "Fault Activation Ratio",
                 "Recovery Success Rate"});
  auto pct = [](double value) {
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(2);
    oss << value * 100.0 << "%";
    return oss.str();
  };
  static const std::map<std::string, std::string> kPaperNames = {
      {"sched", "Sched"}, {"mman", "MM"},   {"ramfs", "FS"},     {"lock", "Lock"},
      {"evt", "Event"},   {"tmr", "Timer"}, {"storage", "Storage"}};
  for (const auto& row : rows) {
    auto name_it = kPaperNames.find(row.component);
    table.add_row({name_it != kPaperNames.end() ? name_it->second : row.component,
                   std::to_string(row.injected), std::to_string(row.recovered),
                   std::to_string(row.degraded), std::to_string(row.segfault),
                   std::to_string(row.propagated), std::to_string(row.other),
                   std::to_string(row.undetected), pct(row.activation_ratio()),
                   pct(row.success_rate())});
  }
  return table.render();
}

}  // namespace sg::swifi
