#include "swifi/swifi.hpp"

#include <atomic>
#include <sstream>
#include <thread>

#include "c3stubs/c3_stubs.hpp"
#include "components/trace_check.hpp"
#include "swifi/workloads.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace sg::swifi {

using components::FtMode;
using components::System;
using components::SystemConfig;
using kernel::Reg;
using kernel::ThreadId;

const char* to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::kRecovered: return "recovered";
    case Outcome::kDegraded: return "degraded";
    case Outcome::kSegfault: return "segfault";
    case Outcome::kPropagated: return "propagated";
    case Outcome::kOther: return "other";
    case Outcome::kUndetected: return "undetected";
  }
  return "?";
}

const char* to_string(InjectionProfile profile) {
  switch (profile) {
    case InjectionProfile::kRegisterFlip: return "register-flip";
    case InjectionProfile::kFailStop: return "fail-stop";
    case InjectionProfile::kFailStopBurst: return "fail-stop-burst";
  }
  return "?";
}

std::uint64_t episode_seed(std::uint64_t master, const std::string& cell, std::uint64_t episode) {
  // FNV-1a over the cell tag, then two splitmix64 finalization rounds over
  // (master, tag, episode). Workers pulling episodes off a shared index in
  // any order and any shard width reconstruct identical seeds.
  std::uint64_t tag = 0xcbf29ce484222325ULL;
  for (const char c : cell) {
    tag ^= static_cast<unsigned char>(c);
    tag *= 0x100000001b3ULL;
  }
  std::uint64_t x = master ^ tag ^ (episode * 0x9e3779b97f4a7c15ULL);
  for (int round = 0; round < 2; ++round) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
  }
  return x;
}

Outcome Campaign::run_episode(const std::string& service, std::uint64_t episode,
                              EpisodeTrace* trace_out) {
  // The historical Table II seed derivation, kept bit-for-bit so golden
  // traces and the determinism tests survive the run_episode_detail split.
  const std::uint64_t seed = config_.seed ^ (episode * 0x9e3779b97f4a7c15ULL);
  return run_episode_detail(service, seed, EpisodeOptions{}, trace_out).outcome;
}

EpisodeResult Campaign::run_episode_detail(const std::string& service, std::uint64_t seed,
                                           const EpisodeOptions& options,
                                           EpisodeTrace* trace_out) const {
  // Fresh machine per injection: "after each workload execution, the system
  // is rebooted to clear any residual errors before the next run" (§V-D).
  SystemConfig sys_config;
  sys_config.seed = seed;
  sys_config.mode = config_.mode;
  sys_config.policy = config_.policy;
  sys_config.supervision = options.supervision;
  sys_config.cores = options.cores;
  sys_config.trace = config_.trace || options.check_invariants || sys_config.trace;
  System sys(sys_config);
  if (config_.mode == FtMode::kC3) c3stubs::install_c3_stubs(sys);

  WorkloadState state;
  if (options.workload_iterations > 0) state.target_iterations = options.workload_iterations;
  install_workload(sys, service, state);
  SG_ASSERT(!state.victims.empty());

  auto& kern = sys.kernel();
  const kernel::CompId target = sys.service_component(service).id();

  // Campaign episodes run shortened workloads; every injection delay and
  // observation window scales by the same factor so flips still land
  // mid-workload. scale == 1 reproduces the historical timing exactly.
  const double scale =
      options.workload_iterations > 0
          ? static_cast<double>(options.workload_iterations) / WorkloadState{}.target_iterations
          : 1.0;
  auto scaled = [scale](kernel::VirtualTime dur) {
    const auto v = static_cast<kernel::VirtualTime>(static_cast<double>(dur) * scale);
    return v > 0 ? v : 1;
  };

  Rng rng(seed ^ 0xdead10cc);
  bool flip_applied = false;

  // The SWIFI context: highest priority, periodically scheduled via the
  // virtual clock (the paper's separate injector component). The register
  // profile arms one single-bit flip (fault mask 0xFFFFFFFF: any of 32 bits;
  // any of the 8 registers, §V-A) that materializes while the victim
  // executes inside the target component; the fail-stop profiles deliver
  // clean detected faults instead.
  kern.thd_create("swifi", 2, [&, options] {
    kern.block_current_until(kern.clock().now() + scaled(60) + rng.next_below(scaled(300)));
    switch (options.profile) {
      case InjectionProfile::kRegisterFlip: {
        const ThreadId victim =
            state.victims[static_cast<std::size_t>(rng.next_below(state.victims.size()))];
        const Reg reg = static_cast<Reg>(rng.next_below(kernel::kNumRegisters));
        const int bit = static_cast<int>(rng.next_below(kernel::kRegisterBits));
        const int delay_ops = static_cast<int>(rng.next_below(24));
        kernel::RegisterFile& regs = kern.thread_registers(victim);
        regs.arm_flip(target, reg, bit, delay_ops);
        // Observe until the flip lands or the workload finishes.
        for (int window = 0; window < 64; ++window) {
          kern.block_current_until(kern.clock().now() + scaled(120));
          if (regs.flip_was_applied()) {
            flip_applied = true;
            break;
          }
          if (state.done()) break;
        }
        flip_applied = flip_applied || regs.flip_was_applied();
        return;
      }
      case InjectionProfile::kFailStop:
        kern.inject_crash(target);
        flip_applied = true;
        return;
      case InjectionProfile::kFailStopBurst:
        // Tightly spaced fail-stops: the crash-loop signature a supervisor
        // policy should trip on (and escalate through) within one window.
        // Seven shots are enough to reach quarantine under an aggressive
        // policy (threshold 3, one trip per level: 3 -> group, 6 -> out).
        for (int burst = 0; burst < 7; ++burst) {
          if (kern.is_quarantined(target)) break;
          kern.inject_crash(target);
          flip_applied = true;
          kern.block_current_until(kern.clock().now() + scaled(30));
        }
        return;
    }
  });

  EpisodeResult result;
  // Single exit so the episode's trace is captured on every path, including
  // whole-system crashes (exactly the episodes worth post-morteming).
  auto finalize = [&](Outcome outcome, bool crashed) {
    result.outcome = outcome;
    result.crashed = crashed;
    result.quarantined = kern.is_quarantined(target);
    result.virtual_end = kern.clock().now();
    if (sys.config().trace && !crashed && options.check_invariants) {
      // A crash stops the log mid-recovery; the invariants only promise
      // anything about runs the machine survived.
      trace::InvariantChecker checker(components::checker_hooks(sys));
      const auto violations = checker.check(kern.tracer().snapshot());
      result.invariant_violations = static_cast<int>(violations.size());
      if (trace_out != nullptr) trace_out->violations = violations;
    }
    if (sys.config().trace && trace_out != nullptr) {
      const trace::Tracer::Snapshot snap = kern.tracer().snapshot();
      const trace::NameFn names = components::comp_namer(sys);
      trace_out->normalized = trace::format_normalized(snap.events, names);
      std::ostringstream json;
      trace::write_chrome_trace(json, snap, names);
      trace_out->chrome_json = json.str();
      trace_out->truncated = snap.truncated();
      if (!crashed && !options.check_invariants) {
        trace::InvariantChecker checker(components::checker_hooks(sys));
        trace_out->violations = checker.check(snap);
        result.invariant_violations = static_cast<int>(trace_out->violations.size());
      }
    }
    return result;
  };

  const int reboots_before = kern.total_reboots();
  try {
    kern.run();
  } catch (const kernel::SystemCrash& crash) {
    result.crash_kind = crash.kind();
    switch (crash.kind()) {
      case kernel::CrashKind::kStackSegfault:
        return finalize(Outcome::kSegfault, true);
      case kernel::CrashKind::kPropagated:
        return finalize(Outcome::kPropagated, true);
      case kernel::CrashKind::kHang:
      case kernel::CrashKind::kDeadlock:
      case kernel::CrashKind::kDoubleFault:
      case kernel::CrashKind::kQuarantined:
        return finalize(Outcome::kOther, true);
    }
    return finalize(Outcome::kOther, true);
  }

  for (const ThreadId victim : state.victims) {
    flip_applied = flip_applied || kern.thread_registers(victim).flip_was_applied();
  }
  if (!flip_applied) return finalize(Outcome::kUndetected, false);
  if (kern.total_reboots() > reboots_before) {
    // The fault was detected and a micro-reboot + interface-driven recovery
    // ran; success means the workload then completed with its invariants
    // intact ("continued execution that abides by the target component and
    // workload specifications post-recovery", §V-D). A workload failure the
    // coordinator explicitly flagged as degraded (the substrate lost state
    // and recovery fell back) is reported as such, not lumped into "other".
    if (state.correct && state.done()) return finalize(Outcome::kRecovered, false);
    if (sys.coordinator().degraded()) return finalize(Outcome::kDegraded, false);
    return finalize(Outcome::kOther, false);
  }
  // The flip landed but was absorbed (dead register or overwritten value).
  return finalize(Outcome::kUndetected, false);
}

namespace {
void tally_outcome(CampaignRow& row, Outcome outcome) {
  ++row.injected;
  switch (outcome) {
    case Outcome::kRecovered: ++row.recovered; break;
    case Outcome::kDegraded: ++row.degraded; break;
    case Outcome::kSegfault: ++row.segfault; break;
    case Outcome::kPropagated: ++row.propagated; break;
    case Outcome::kOther: ++row.other; break;
    case Outcome::kUndetected: ++row.undetected; break;
  }
}
}  // namespace

CampaignRow Campaign::run_service(const std::string& service, int workers) {
  CampaignRow row;
  row.component = service;
  const int total = config_.injections;
  if (workers <= 1) {
    for (int episode = 0; episode < total; ++episode) {
      tally_outcome(row, run_episode(service, static_cast<std::uint64_t>(episode)));
    }
    return row;
  }
  // Sharded run: workers pull episode indices off a shared atomic counter.
  // Each episode's seed is a pure function of (config seed, index), so the
  // row is identical for every worker count; per-worker partial rows merge
  // commutatively at the end.
  std::atomic<int> next{0};
  std::vector<CampaignRow> partial(static_cast<std::size_t>(workers));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      CampaignRow& mine = partial[static_cast<std::size_t>(w)];
      for (int episode = next.fetch_add(1); episode < total; episode = next.fetch_add(1)) {
        tally_outcome(mine, run_episode(service, static_cast<std::uint64_t>(episode)));
      }
    });
  }
  for (std::thread& thread : pool) thread.join();
  for (const CampaignRow& mine : partial) {
    row.injected += mine.injected;
    row.recovered += mine.recovered;
    row.degraded += mine.degraded;
    row.segfault += mine.segfault;
    row.propagated += mine.propagated;
    row.other += mine.other;
    row.undetected += mine.undetected;
  }
  return row;
}

std::vector<CampaignRow> Campaign::run_all(int workers) {
  std::vector<CampaignRow> rows;
  // The paper's six targets, plus the recovery substrate itself: faults in
  // the storage component exercise the rebuild/degradation machinery.
  for (const char* service : {"sched", "mman", "ramfs", "lock", "evt", "tmr", "storage"}) {
    rows.push_back(run_service(service, workers));
  }
  return rows;
}

std::string format_table2(const std::vector<CampaignRow>& rows) {
  TextTable table;
  table.add_row({"System Component", "Injected", "Recovered Faults", "Degraded",
                 "Not recovered (segfault)", "Not recovered (propagated)",
                 "Not recovered (other reason)", "Undetected", "Fault Activation Ratio",
                 "Recovery Success Rate"});
  auto pct = [](double value) {
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(2);
    oss << value * 100.0 << "%";
    return oss.str();
  };
  static const std::map<std::string, std::string> kPaperNames = {
      {"sched", "Sched"}, {"mman", "MM"},   {"ramfs", "FS"},     {"lock", "Lock"},
      {"evt", "Event"},   {"tmr", "Timer"}, {"storage", "Storage"}};
  for (const auto& row : rows) {
    auto name_it = kPaperNames.find(row.component);
    table.add_row({name_it != kPaperNames.end() ? name_it->second : row.component,
                   std::to_string(row.injected), std::to_string(row.recovered),
                   std::to_string(row.degraded), std::to_string(row.segfault),
                   std::to_string(row.propagated), std::to_string(row.other),
                   std::to_string(row.undetected), pct(row.activation_ratio()),
                   pct(row.success_rate())});
  }
  return table.render();
}

}  // namespace sg::swifi
