#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "components/system.hpp"
#include "util/rng.hpp"

namespace sg::swifi {

/// Classification of one injected fault, following Table II's columns.
enum class Outcome {
  kRecovered,   ///< Activated and successfully recovered by SuperGlue/C3.
  kDegraded,    ///< Recovery completed but explicitly leaned on a fallback
                ///< because the G0/G1 substrate lost state (docs/STORAGE.md);
                ///< the workload observed the loss. Not in the paper's
                ///< Table II — it appears once storage is itself a target.
  kSegfault,    ///< Not recovered: the system exited with a segfault.
  kPropagated,  ///< Not recovered: corruption escaped into a client.
  kOther,       ///< Not recovered: hang / lost wakeup / fault during recovery.
  kUndetected,  ///< The flip had no observable effect (dead or overwritten).
};

const char* to_string(Outcome outcome);

/// One Table II row.
struct CampaignRow {
  std::string component;
  int injected = 0;
  int recovered = 0;
  int degraded = 0;
  int segfault = 0;
  int propagated = 0;
  int other = 0;
  int undetected = 0;

  int activated() const { return injected - undetected; }
  /// |F_a| / |F_a ∪ F_u|.
  double activation_ratio() const {
    return injected == 0 ? 0.0 : static_cast<double>(activated()) / injected;
  }
  /// |F_r| / |F_a|.
  double success_rate() const {
    return activated() == 0 ? 0.0 : static_cast<double>(recovered) / activated();
  }
};

struct CampaignConfig {
  int injections = 500;  ///< Faults per target component (|F_a ∪ F_u|, §V-D).
  std::uint64_t seed = 2016;
  components::FtMode mode = components::FtMode::kSuperGlue;
  c3::RecoveryPolicy policy = c3::RecoveryPolicy::kOnDemand;
  /// Trace every episode and run the recovery-invariant checker on its event
  /// stream (the determinism test and --trace=FILE use the captured streams).
  bool trace = false;
};

/// How an episode's fault is delivered.
enum class InjectionProfile {
  kRegisterFlip,   ///< §V-A single-bit register flip while inside the target.
  kFailStop,       ///< One clean detected fail-stop fault (inject_crash).
  kFailStopBurst,  ///< A burst of fail-stop faults in quick succession — the
                   ///< crash-loop shape that exercises supervisor escalation.
};

const char* to_string(InjectionProfile profile);

/// The per-episode seed is a pure function of (master seed, cell tag,
/// episode index): independent of worker count, shard boundaries, and the
/// order episodes are pulled off the shared work queue. `cell` names the
/// campaign cell, e.g. "ramfs/register-flip".
std::uint64_t episode_seed(std::uint64_t master, const std::string& cell, std::uint64_t episode);

/// Knobs the million-injection campaign layers on top of the Table II
/// episode. Defaults reproduce run_episode() exactly.
struct EpisodeOptions {
  InjectionProfile profile = InjectionProfile::kRegisterFlip;
  /// Workload iterations per episode; 0 keeps the workload default (400).
  /// Campaign runs use a smaller count — injection delays and observation
  /// windows scale proportionally so flips still land mid-workload.
  int workload_iterations = 0;
  /// Trace the episode and run the recovery-invariant checker on its stream
  /// (violations land in EpisodeResult::invariant_violations).
  bool check_invariants = false;
  /// Recovery-supervisor policy for the episode's System. The default is
  /// transparent; campaigns with escalation enabled can observe Quarantined
  /// outcomes.
  supervisor::Policy supervision;
  /// Kernel cores for the episode's System. Campaign determinism (episode
  /// seeds -> byte-identical aggregates) requires 1 — parallelism comes from
  /// sharding whole Systems across workers, never from within an episode.
  /// The multi-core bench mode raises it deliberately (docs/KERNEL.md).
  int cores = 1;
};

/// Everything the campaign's outcome tallies are derived from.
struct EpisodeResult {
  Outcome outcome = Outcome::kUndetected;
  bool crashed = false;  ///< The whole system went down (SystemCrash).
  kernel::CrashKind crash_kind = kernel::CrashKind::kStackSegfault;  ///< Valid iff crashed.
  bool quarantined = false;  ///< The target ended the episode quarantined.
  int invariant_violations = 0;   ///< From check_invariants.
  kernel::VirtualTime virtual_end = 0;  ///< Episode length in virtual time.
};

/// What an episode's tracer captured, for the invariant checker, the
/// determinism tests, and --trace exports.
struct EpisodeTrace {
  std::string normalized;       ///< format_normalized of the episode's events.
  std::string chrome_json;      ///< Chrome trace_event export.
  std::vector<std::string> violations;  ///< Recovery-invariant violations.
  bool truncated = false;       ///< Ring overflow dropped the oldest events.
};

/// Runs the SWIFI campaign of §V-D: for each injection, a fresh system
/// boots ("after each workload execution, the system is rebooted to clear
/// any residual errors"), the component's workload runs, a SWIFI context
/// arms a single random register bit flip (mask 0xFFFFFFFF over the six
/// GPRs + ESP + EBP) that lands while a thread executes inside the target
/// component, and the episode's outcome is classified.
class Campaign {
 public:
  explicit Campaign(CampaignConfig config) : config_(config) {}

  /// One injection episode; exposed for tests. `episode` seeds determinism.
  /// With config.trace set, `trace_out` (when non-null) receives the
  /// episode's event streams and any invariant violations.
  Outcome run_episode(const std::string& service, std::uint64_t episode,
                      EpisodeTrace* trace_out = nullptr);

  /// The full-detail episode the campaign runner drives: `seed` is the
  /// episode's System seed (see episode_seed), and `options` selects the
  /// injection profile, workload scale, invariant checking, and supervision.
  /// Thread-safe: concurrent calls on one Campaign run disjoint Systems.
  EpisodeResult run_episode_detail(const std::string& service, std::uint64_t seed,
                                   const EpisodeOptions& options,
                                   EpisodeTrace* trace_out = nullptr) const;

  /// Full campaign for one target component. `workers` > 1 shards episodes
  /// across threads by atomic work index; per-episode seeds depend only on
  /// (config seed, episode index), so every worker count produces the same
  /// row.
  CampaignRow run_service(const std::string& service, int workers = 1);

  /// The six Table II components plus the storage substrate target.
  std::vector<CampaignRow> run_all(int workers = 1);

 private:
  CampaignConfig config_;
};

/// Renders rows in the shape of Table II.
std::string format_table2(const std::vector<CampaignRow>& rows);

}  // namespace sg::swifi
