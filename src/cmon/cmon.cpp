#include "cmon/cmon.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace sg::cmon {

using kernel::CompId;
using kernel::ThreadId;

bool Monitor::occupied_not_blocked(CompId comp) const {
  for (const ThreadId thd : kernel_.thread_ids()) {
    const auto state = kernel_.thread_state(thd);
    if (state != kernel::ThreadState::kReady && state != kernel::ThreadState::kRunning) continue;
    const auto stack = kernel_.thread_invocation_stack(thd);
    if (!stack.empty() && stack.back() == comp) return true;
  }
  return false;
}

std::vector<CompId> Monitor::scan_once() {
  std::vector<CompId> rebooted;
  // A scan long after the previous one means the virtual clock jumped (idle
  // fast-forward, or a harness advancing time by hand). No thread ran during
  // the skipped span, so stagnation over it is meaningless: re-baseline the
  // completion counters and charge nothing this pass.
  const kernel::VirtualTime scan_at = clock_.now();
  const bool paused =
      config_.pause_grace_periods > 0 &&
      scan_at - last_scan_at_ >
          config_.period_us * static_cast<kernel::VirtualTime>(config_.pause_grace_periods);
  last_scan_at_ = scan_at;
  for (Watched& track : watched_) {
    const std::uint64_t completions = kernel_.completions_of(track.comp);
    const bool progressing = completions != track.last_completions;
    track.last_completions = completions;
    if (paused) continue;  // Re-baselined; neither charge nor clear.
    if (progressing || !occupied_not_blocked(track.comp)) {
      track.stale_windows = 0;
      continue;
    }
    // Occupied but no invocation completed this window: suspicious.
    ++track.stale_windows;
    if (track.stale_windows < config_.stale_windows_threshold) continue;
    // Latent fault: a thread is looping inside the component. Convert it
    // into an ordinary fail-stop fault by micro-rebooting proactively; the
    // looping thread unwinds via ServerRebooted to its client stub, which
    // recovers and redoes as usual.
    SG_INFO("cmon", "latent fault declared in comp " << track.comp << " after "
                                                     << track.stale_windows
                                                     << " stale windows; rebooting");
    kernel_.trace(trace::EventKind::kCmonDetect, track.comp, track.stale_windows);
    track.stale_windows = 0;
    detections_.push_back({track.comp, clock_.now()});
    kernel_.inject_crash(track.comp);
    rebooted.push_back(track.comp);
  }
  return rebooted;
}

int Monitor::stale_windows_of(CompId comp) const {
  for (const Watched& track : watched_) {
    if (track.comp == comp) return track.stale_windows;
  }
  return 0;
}

ThreadId Monitor::start(kernel::Priority prio, const bool* stop) {
  return kernel_.thd_create("cmon", prio, [this, stop] {
    while (!*stop) {
      kernel_.block_current_until(clock_.now() + config_.period_us);
      if (*stop) break;
      scan_once();
    }
  });
}

}  // namespace sg::cmon
