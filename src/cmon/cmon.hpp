#pragma once

#include <string>
#include <vector>

#include "kernel/clock.hpp"
#include "kernel/kernel.hpp"

namespace sg::cmon {

/// A C'MON-style latent-fault monitor (the paper cites C'MON [28] for the
/// "latent fault" class that fail-stop detection misses: injected faults
/// that cause infinite loops rather than crashes — Table II's "other
/// reason"). The monitor runs as a high-priority periodic thread and watches
/// each registered component for *occupied but not progressing* behaviour:
/// some thread sits inside the component (ready/running, not legitimately
/// blocked) while the component's completed-invocation count stagnates
/// across consecutive monitoring windows. After `stale_windows_threshold`
/// such windows the component is declared latently faulty and proactively
/// micro-rebooted, converting a hang into an ordinary recoverable fault that
/// the C3/SuperGlue machinery then handles.
///
/// All timing is read from the injected VirtualClock (the kernel's
/// event-driven time source), never from a wall clock: a window only counts
/// against a component if roughly one monitoring period of *virtual execution*
/// elapsed since the previous scan. When the clock fast-forwards (an idle
/// jump, or a campaign harness advancing time between phases) the scan
/// re-baselines instead of charging staleness — no simulated thread ran
/// during the skipped span, so the absence of progress says nothing.
class Monitor {
 public:
  struct Config {
    kernel::VirtualTime period_us = 200;  ///< Monitoring window length.
    int stale_windows_threshold = 3;      ///< Windows without progress => latent.
    /// A scan arriving more than this many periods after the previous one is
    /// treated as following a virtual-time pause/jump: it re-baselines the
    /// progress counters instead of charging a stale window.
    int pause_grace_periods = 4;
  };

  struct Detection {
    kernel::CompId comp;
    kernel::VirtualTime at;
  };

  /// The clock defaults to the kernel's own; tests may inject a different
  /// VirtualClock (it must outlive the monitor).
  Monitor(kernel::Kernel& kernel, Config config)
      : Monitor(kernel, config, kernel.clock()) {}
  Monitor(kernel::Kernel& kernel, Config config, const kernel::VirtualClock& clock)
      : kernel_(kernel), config_(config), clock_(clock), last_scan_at_(clock.now()) {}

  /// Adds a component to the watch list.
  void watch(kernel::CompId comp) { watched_.push_back(Watched{comp}); }

  /// Spawns the monitor thread at `prio` (should outrank every watched
  /// workload so it can always run). The thread exits when `*stop` is true.
  kernel::ThreadId start(kernel::Priority prio, const bool* stop);

  /// One monitoring pass over the watch list; exposed for tests.
  /// Returns the components declared latently faulty (and rebooted).
  std::vector<kernel::CompId> scan_once();

  const std::vector<Detection>& detections() const { return detections_; }
  int reboots_triggered() const { return static_cast<int>(detections_.size()); }

  /// Consecutive no-progress windows currently charged to `comp` (0 if not
  /// watched). Exposes the stagnation counter for edge-case tests.
  int stale_windows_of(kernel::CompId comp) const;

 private:
  /// True if some thread currently occupies `comp` without being blocked —
  /// the "running inside" condition of the stagnation test.
  bool occupied_not_blocked(kernel::CompId comp) const;

  kernel::Kernel& kernel_;
  Config config_;
  const kernel::VirtualClock& clock_;
  kernel::VirtualTime last_scan_at_ = 0;
  /// Per-component stagnation state lives inline in the watch list, so a
  /// scan is one linear pass over a dense vector (no map lookups).
  struct Watched {
    kernel::CompId comp;
    std::uint64_t last_completions = 0;
    int stale_windows = 0;
  };
  std::vector<Watched> watched_;
  std::vector<Detection> detections_;
};

}  // namespace sg::cmon
