#include "c3stubs/c3_stubs.hpp"

#include "util/assert.hpp"
#include "util/loc_counter.hpp"

namespace sg::c3stubs {

void install_c3_stubs(components::System& system) {
  system.set_c3_factory(
      [&system](kernel::Component& client,
                const std::string& service) -> std::unique_ptr<c3::Invoker> {
        if (service == "sched") return make_c3_sched_stub(system, client);
        if (service == "lock") return make_c3_lock_stub(system, client);
        if (service == "mman") return make_c3_mman_stub(system, client);
        if (service == "ramfs") return make_c3_ramfs_stub(system, client);
        if (service == "evt") return make_c3_evt_stub(system, client);
        if (service == "tmr") return make_c3_tmr_stub(system, client);
        SG_ASSERT_MSG(false, "no C3 stub for service " + service);
        __builtin_unreachable();
      });
}

int manual_stub_loc(const std::string& service) {
  // SG_C3STUBS_DIR is injected by the build; counting the real source keeps
  // Fig 6(c) honest as the stubs evolve.
  const std::string path = std::string(SG_C3STUBS_DIR) + "/c3_" + service + "_stub.cpp";
  return count_loc_file(path);
}

}  // namespace sg::c3stubs
