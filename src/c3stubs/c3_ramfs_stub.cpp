// Hand-written C3 client stub for the RamFS interface. This is the stub the
// paper singles out as heavyweight ("some interface stubs are more than 398
// lines of code (e.g., the file system component stubs)", §II-F). It tracks
// the path id and file offset per open descriptor, advances the offset from
// tread/twrite return values, and recovers a descriptor with the classic
// open-then-lseek walk. File *contents* come back via the storage component
// inside the server (G1), so the stub only rebuilds descriptor state.

#include <map>

#include "c3stubs/c3_stubs.hpp"
#include "c3stubs/cstub_common.hpp"
#include "util/assert.hpp"

namespace sg::c3stubs {

using kernel::Args;
using kernel::Value;

namespace {

class C3RamFsStub final : public C3StubBase {
 public:
  // Dense fn ids: indices into the fn table declared below.
  enum Fn : c3::FnId { kTsplit, kTread, kTwrite, kTlseek, kTrelease };

  C3RamFsStub(kernel::Kernel& kernel, kernel::Component& client, kernel::CompId server)
      : C3StubBase(kernel, client, server,
                   {"tsplit", "tread", "twrite", "tlseek", "trelease"}) {}

  Value call_id(c3::FnId fn, const Args& args) override {
    if (epoch_stale()) fault_update();
    switch (fn) {
      case kTsplit: return do_tsplit(args);
      case kTread:
      case kTwrite: return do_io(fn, args);
      case kTlseek: return do_tlseek(args);
      case kTrelease: return do_trelease(args);
    }
    SG_ASSERT_MSG(false, "c3 ramfs stub: unknown fn id " + std::to_string(fn));
    __builtin_unreachable();
  }

 private:
  struct Track {
    Value sid;      ///< Current server fd.
    Value pathid;   ///< Hash of the path (the paper's id).
    Value parent;   ///< Parent fd this descriptor was split from.
    Value offset;   ///< Tracked from tlseek args and tread/twrite returns.
    bool faulty;
  };

  void fault_update() {
    epoch_sync();
    for (auto& [fd, track] : fds_) track.faulty = true;
  }

  /// The open + lseek recreation of §II-C: re-split from the (recovered)
  /// parent, then re-seek to the tracked offset.
  void recover(Track& track) {
    if (!track.faulty) return;
    track.faulty = false;
    for (int tries = 0; tries < kMaxRedos; ++tries) {
      // D1: recover the parent descriptor first (root fd 0 needs nothing).
      Value parent_sid = track.parent;
      auto parent_it = fds_.find(track.parent);
      if (parent_it != fds_.end()) {
        recover(parent_it->second);
        parent_sid = parent_it->second.sid;
      }
      auto res = invoke_id(kTsplit, {client_.id(), parent_sid, track.pathid, track.sid});
      if (res.fault) {
        fault_update();
        track.faulty = false;
        continue;
      }
      SG_ASSERT_MSG(res.ret >= 0, "tsplit replay failed");
      track.sid = res.ret;
      res = invoke_id(kTlseek, {client_.id(), track.sid, track.offset});
      if (res.fault) {
        fault_update();
        track.faulty = false;
        continue;
      }
      return;
    }
    redo_limit("ramfs recover");
  }

  Value do_tsplit(const Args& args) {
    for (int redo = 0; redo < kMaxRedos; ++redo) {
      Args wire = args;
      auto parent_it = fds_.find(args[1]);
      if (parent_it != fds_.end()) {
        recover(parent_it->second);
        wire[1] = parent_it->second.sid;
      }
      const auto res = invoke_id(kTsplit, wire);
      if (res.fault) {
        fault_update();
        continue;
      }
      if (einval_means_fault(res)) {
        fault_update();
        continue;
      }
      if (res.ret >= 0) fds_[res.ret] = Track{res.ret, args[2], args[1], 0, false};
      return res.ret;
    }
    redo_limit(kTsplit);
  }

  Value do_io(c3::FnId fn, const Args& args) {
    for (int redo = 0; redo < kMaxRedos; ++redo) {
      auto it = fds_.find(args[1]);
      Args wire = args;
      if (it != fds_.end()) {
        recover(it->second);
        wire[1] = it->second.sid;
      }
      const auto res = invoke_id(fn, wire);
      if (res.fault) {
        fault_update();
        continue;
      }
      if (einval_means_fault(res)) {
        fault_update();
        continue;
      }
      // Offset advances by the bytes moved (desc_data_retadd equivalent).
      if (res.ret > 0 && it != fds_.end()) it->second.offset += res.ret;
      return res.ret;
    }
    redo_limit(fn);
  }

  Value do_tlseek(const Args& args) {
    for (int redo = 0; redo < kMaxRedos; ++redo) {
      auto it = fds_.find(args[1]);
      Args wire = args;
      if (it != fds_.end()) {
        recover(it->second);
        wire[1] = it->second.sid;
      }
      const auto res = invoke_id(kTlseek, wire);
      if (res.fault) {
        fault_update();
        continue;
      }
      if (einval_means_fault(res)) {
        fault_update();
        continue;
      }
      if (res.ret == kernel::kOk && it != fds_.end()) it->second.offset = args[2];
      return res.ret;
    }
    redo_limit(kTlseek);
  }

  Value do_trelease(const Args& args) {
    for (int redo = 0; redo < kMaxRedos; ++redo) {
      auto it = fds_.find(args[1]);
      Args wire = args;
      if (it != fds_.end()) {
        recover(it->second);
        wire[1] = it->second.sid;
      }
      const auto res = invoke_id(kTrelease, wire);
      if (res.fault) {
        fault_update();
        continue;
      }
      if (einval_means_fault(res)) {
        fault_update();
        continue;
      }
      if (res.ret == kernel::kOk && it != fds_.end()) fds_.erase(it);
      return res.ret;
    }
    redo_limit(kTrelease);
  }

  std::map<Value, Track> fds_;
};

}  // namespace

std::unique_ptr<c3::Invoker> make_c3_ramfs_stub(components::System& system,
                                                kernel::Component& client) {
  return std::make_unique<C3RamFsStub>(system.kernel(), client, system.ramfs().id());
}

}  // namespace sg::c3stubs
