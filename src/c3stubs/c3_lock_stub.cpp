// Hand-written C3 client stub for the lock interface — the manual
// recovery code that predates SuperGlue (compare with the generated
// lock_cstub.gen.c). Tracks each lock's state (FREE/TAKEN) and re-creates
// and re-acquires locks after a micro-reboot of the lock component.

#include <map>

#include "c3stubs/c3_stubs.hpp"
#include "c3stubs/cstub_common.hpp"
#include "util/assert.hpp"

namespace sg::c3stubs {

using kernel::Args;
using kernel::Value;

namespace {

class C3LockStub final : public C3StubBase {
 public:
  // Dense fn ids: indices into the fn table declared below.
  enum Fn : c3::FnId { kAlloc, kTake, kRelease, kFree };

  C3LockStub(kernel::Kernel& kernel, kernel::Component& client, kernel::CompId server)
      : C3StubBase(kernel, client, server,
                   {"lock_alloc", "lock_take", "lock_release", "lock_free"}) {}

  Value call_id(c3::FnId fn, const Args& args) override {
    if (epoch_stale()) fault_update();
    switch (fn) {
      case kAlloc: return do_alloc(args);
      case kTake: return do_take(args);
      case kRelease: return do_release(args);
      case kFree: return do_free(args);
    }
    SG_ASSERT_MSG(false, "c3 lock stub: unknown fn id " + std::to_string(fn));
    __builtin_unreachable();
  }

 private:
  enum class LockState { kFree, kTaken };
  struct Track {
    Value sid;
    LockState state;
    Value owner_tid;  ///< Who holds it (tracked from lock_take's owner arg).
    bool faulty;
  };

  void fault_update() {
    epoch_sync();
    for (auto& [vid, track] : locks_) track.faulty = true;
  }

  // Recreate the lock; if we held it before the fault, re-acquire it (the
  // "recreating, acquiring, or contending locks" walk of §II-C).
  void recover(Value vid, Track& track) {
    if (!track.faulty) return;
    track.faulty = false;
    for (int tries = 0; tries < kMaxRedos; ++tries) {
      auto res = invoke_id(kAlloc, {client_.id(), track.sid});
      if (res.fault) {
        fault_update();
        track.faulty = false;
        continue;
      }
      SG_ASSERT_MSG(res.ret >= 0, "lock re-alloc failed");
      track.sid = res.ret;
      if (track.state == LockState::kTaken) {
        // Re-acquire on behalf of the pre-fault owner, whoever drives this.
        res = invoke_id(kTake, {client_.id(), track.sid, track.owner_tid});
        if (res.fault) {
          fault_update();
          track.faulty = false;
          continue;
        }
      }
      return;
    }
    redo_limit("lock recover " + std::to_string(vid));
  }

  Value do_alloc(const Args& args) {
    for (int redo = 0; redo < kMaxRedos; ++redo) {
      const auto res = invoke_id(kAlloc, args);
      if (res.fault) {
        fault_update();
        continue;
      }
      if (einval_means_fault(res)) {
        fault_update();
        continue;
      }
      if (res.ret >= 0) locks_[res.ret] = Track{res.ret, LockState::kFree, kernel::kNoThread, false};
      return res.ret;
    }
    redo_limit(kAlloc);
  }

  Value do_take(const Args& args) {
    for (int redo = 0; redo < kMaxRedos; ++redo) {
      auto it = locks_.find(args[1]);
      Args wire = args;
      if (it != locks_.end()) {
        recover(it->first, it->second);
        wire[1] = it->second.sid;
      }
      const auto res = invoke_id(kTake, wire);
      if (res.fault) {
        fault_update();
        continue;
      }
      if (einval_means_fault(res)) {
        fault_update();
        continue;
      }
      if (res.ret == kernel::kOk && it != locks_.end()) {
        it->second.state = LockState::kTaken;
        it->second.owner_tid = args[2];
      }
      return res.ret;
    }
    redo_limit(kTake);
  }

  Value do_release(const Args& args) {
    for (int redo = 0; redo < kMaxRedos; ++redo) {
      auto it = locks_.find(args[1]);
      Args wire = args;
      if (it != locks_.end()) {
        recover(it->first, it->second);
        wire[1] = it->second.sid;
      }
      const auto res = invoke_id(kRelease, wire);
      if (res.fault) {
        fault_update();
        continue;
      }
      if (einval_means_fault(res)) {
        fault_update();
        continue;
      }
      if (res.ret == kernel::kOk && it != locks_.end()) it->second.state = LockState::kFree;
      return res.ret;
    }
    redo_limit(kRelease);
  }

  Value do_free(const Args& args) {
    for (int redo = 0; redo < kMaxRedos; ++redo) {
      auto it = locks_.find(args[1]);
      Args wire = args;
      if (it != locks_.end()) {
        recover(it->first, it->second);
        wire[1] = it->second.sid;
      }
      const auto res = invoke_id(kFree, wire);
      if (res.fault) {
        fault_update();
        continue;
      }
      if (einval_means_fault(res)) {
        fault_update();
        continue;
      }
      if (res.ret == kernel::kOk && it != locks_.end()) locks_.erase(it);
      return res.ret;
    }
    redo_limit(kFree);
  }

  std::map<Value, Track> locks_;
};

}  // namespace

std::unique_ptr<c3::Invoker> make_c3_lock_stub(components::System& system,
                                               kernel::Component& client) {
  return std::make_unique<C3LockStub>(system.kernel(), client, system.lock().id());
}

}  // namespace sg::c3stubs
