#pragma once

#include <memory>
#include <string>

#include "c3/invoker.hpp"
#include "components/system.hpp"

namespace sg::c3stubs {

/// Installs the hand-written C3 interface stubs as the System's invoker
/// factory (FtMode::kC3). These stubs predate SuperGlue: each one encodes
/// the same interface-driven recovery — descriptor tracking, fault-epoch
/// checks, redo loops, recreation with id hints, walk replay — but written
/// manually per interface, the way C3 developers had to before the IDL
/// compiler existed (§II-F: "C3 stubs are manually written, and are complex
/// and error prone"). Functional behaviour matches the SuperGlue stubs;
/// the difference the paper measures is programming effort (Fig 6c) and
/// small constant overheads (Fig 6a/b).
void install_c3_stubs(components::System& system);

/// Hand-written manual stub LOC per service, for the Fig 6(c) comparison —
/// counted from the .cpp files in this directory at build time.
int manual_stub_loc(const std::string& service);

// Individual factories (used by unit tests).
std::unique_ptr<c3::Invoker> make_c3_sched_stub(components::System& system,
                                                kernel::Component& client);
std::unique_ptr<c3::Invoker> make_c3_lock_stub(components::System& system,
                                               kernel::Component& client);
std::unique_ptr<c3::Invoker> make_c3_mman_stub(components::System& system,
                                               kernel::Component& client);
std::unique_ptr<c3::Invoker> make_c3_ramfs_stub(components::System& system,
                                                kernel::Component& client);
std::unique_ptr<c3::Invoker> make_c3_evt_stub(components::System& system,
                                              kernel::Component& client);
std::unique_ptr<c3::Invoker> make_c3_tmr_stub(components::System& system,
                                              kernel::Component& client);

}  // namespace sg::c3stubs
