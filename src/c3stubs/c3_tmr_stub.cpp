// Hand-written C3 client stub for the timer-manager interface: tracks each
// timer's period and re-creates it (with the original id as hint) after a
// micro-reboot; an in-flight periodic block simply redoes.

#include <map>

#include "c3stubs/c3_stubs.hpp"
#include "c3stubs/cstub_common.hpp"
#include "util/assert.hpp"

namespace sg::c3stubs {

using kernel::Args;
using kernel::Value;

namespace {

class C3TmrStub final : public C3StubBase {
 public:
  // Dense fn ids: indices into the fn table declared below.
  enum Fn : c3::FnId { kSetup, kBlock, kCancel, kFree };

  C3TmrStub(kernel::Kernel& kernel, kernel::Component& client, kernel::CompId server)
      : C3StubBase(kernel, client, server, {"tmr_setup", "tmr_block", "tmr_cancel", "tmr_free"}) {}

  Value call_id(c3::FnId fn, const Args& args) override {
    if (epoch_stale()) fault_update();
    if (fn == kSetup) return do_setup(args);
    SG_ASSERT_MSG(fn == kBlock || fn == kCancel || fn == kFree,
                  "c3 tmr stub: unknown fn id " + std::to_string(fn));
    for (int redo = 0; redo < kMaxRedos; ++redo) {
      auto it = timers_.find(args[1]);
      Args wire = args;
      if (it != timers_.end()) {
        recover(it->second);
        wire[1] = it->second.sid;
      }
      const auto res = invoke_id(fn, wire);
      if (res.fault) {
        fault_update();
        continue;
      }
      if (einval_means_fault(res)) {
        fault_update();
        continue;
      }
      if (fn == kFree && res.ret == kernel::kOk) timers_.erase(args[1]);
      return res.ret;
    }
    redo_limit(fn);
  }

 private:
  struct Track {
    Value sid;
    Value period_us;
    bool faulty;
  };

  void fault_update() {
    epoch_sync();
    for (auto& [tmid, track] : timers_) track.faulty = true;
  }

  void recover(Track& track) {
    if (!track.faulty) return;
    track.faulty = false;
    for (int tries = 0; tries < kMaxRedos; ++tries) {
      const auto res = invoke_id(kSetup, {client_.id(), track.period_us, track.sid});
      if (res.fault) {
        fault_update();
        track.faulty = false;
        continue;
      }
      SG_ASSERT_MSG(res.ret >= 0, "tmr re-setup failed");
      track.sid = res.ret;
      return;
    }
    redo_limit("tmr recover");
  }

  Value do_setup(const Args& args) {
    for (int redo = 0; redo < kMaxRedos; ++redo) {
      const auto res = invoke_id(kSetup, args);
      if (res.fault) {
        fault_update();
        continue;
      }
      if (einval_means_fault(res)) {
        fault_update();
        continue;
      }
      if (res.ret >= 0) timers_[res.ret] = Track{res.ret, args[1], false};
      return res.ret;
    }
    redo_limit(kSetup);
  }

  std::map<Value, Track> timers_;
};

}  // namespace

std::unique_ptr<c3::Invoker> make_c3_tmr_stub(components::System& system,
                                              kernel::Component& client) {
  return std::make_unique<C3TmrStub>(system.kernel(), client, system.tmr().id());
}

}  // namespace sg::c3stubs
