#pragma once

#include <string>
#include <vector>

#include "c3/ids.hpp"
#include "c3/invoker.hpp"
#include "c3/storage.hpp"
#include "kernel/component.hpp"
#include "kernel/kernel.hpp"
#include "util/assert.hpp"

namespace sg::c3stubs {

/// Plumbing shared by the hand-written C3 stubs — the moral equivalent of
/// C3's CSTUB_* macro layer (Fig 4's CSTUB_FN / CSTUB_FAULT_UPDATE). The
/// actual tracking structures and recovery walks are written out manually in
/// each per-service stub; only the invoke/epoch mechanics are common.
///
/// Each stub declares its interface functions once (in ctor order); the
/// resulting table indices are the stub's FnIds, so the hot entry point is
/// `call_id` with a switch on a dense enum. The string `call` entry is a
/// compatibility shim: one table scan to resolve, then the id path.
class C3StubBase : public c3::Invoker {
 public:
  /// Interns `fn` into this stub's fixed fn table (ids == table indices).
  c3::FnId resolve(const std::string& fn) override {
    for (std::size_t i = 0; i < fn_names_.size(); ++i) {
      if (fn_names_[i] == fn) return static_cast<c3::FnId>(i);
    }
    SG_ASSERT_MSG(false, "c3 stub: unknown fn " + fn);
    __builtin_unreachable();
  }

  /// String compatibility entry: resolve once, then dispatch by id.
  kernel::Value call(const std::string& fn, const kernel::Args& args) override {
    return call_id(resolve(fn), args);
  }

  /// The per-service dispatch switch; every manual stub implements this.
  kernel::Value call_id(c3::FnId fn, const kernel::Args& args) override = 0;

 protected:
  C3StubBase(kernel::Kernel& kernel, kernel::Component& client, kernel::CompId server,
             std::vector<std::string> fn_names)
      : kernel_(kernel), client_(client), server_(server), fn_names_(std::move(fn_names)) {
    epoch_ = kernel_.fault_epoch(server_);
  }

  /// True when the server has been micro-rebooted since we last looked; the
  /// manual stubs call this at the top of every wrapper (CSTUB_FAULT_UPDATE).
  bool epoch_stale() const { return kernel_.fault_epoch(server_) != epoch_; }
  void epoch_sync() { epoch_ = kernel_.fault_epoch(server_); }

  const std::string& fn_name(c3::FnId fn) const {
    return fn_names_[static_cast<std::size_t>(fn)];
  }

  kernel::InvokeResult invoke_id(c3::FnId fn, const kernel::Args& args) {
    return kernel_.invoke(client_.id(), server_, fn_name(fn), args);
  }

  /// Erroneous-return-value awareness (§III-C): an EINVAL for a descriptor
  /// this stub tracks is trustworthy only if the server was not rebooted
  /// since our last epoch sync — otherwise the descriptor was wiped between
  /// our recovery check and the invocation, and the op must be redone.
  bool einval_means_fault(const kernel::InvokeResult& res) {
    return res.ret == kernel::kErrInval && epoch_stale();
  }

  [[noreturn]] void redo_limit(const std::string& fn) {
    throw kernel::SystemCrash(kernel::CrashKind::kDoubleFault, server_,
                              "c3stub redo limit exceeded in " + fn);
  }

  [[noreturn]] void redo_limit(c3::FnId fn) { redo_limit(fn_name(fn)); }

  static constexpr int kMaxRedos = 16;

  kernel::Kernel& kernel_;
  kernel::Component& client_;
  kernel::CompId server_;
  std::vector<std::string> fn_names_;
  int epoch_ = 0;
};

}  // namespace sg::c3stubs
