#pragma once

#include <string>

#include "c3/invoker.hpp"
#include "c3/storage.hpp"
#include "kernel/component.hpp"
#include "kernel/kernel.hpp"

namespace sg::c3stubs {

/// Plumbing shared by the hand-written C3 stubs — the moral equivalent of
/// C3's CSTUB_* macro layer (Fig 4's CSTUB_FN / CSTUB_FAULT_UPDATE). The
/// actual tracking structures and recovery walks are written out manually in
/// each per-service stub; only the invoke/epoch mechanics are common.
class C3StubBase : public c3::Invoker {
 protected:
  C3StubBase(kernel::Kernel& kernel, kernel::Component& client, kernel::CompId server)
      : kernel_(kernel), client_(client), server_(server) {
    epoch_ = kernel_.fault_epoch(server_);
  }

  /// True when the server has been micro-rebooted since we last looked; the
  /// manual stubs call this at the top of every wrapper (CSTUB_FAULT_UPDATE).
  bool epoch_stale() const { return kernel_.fault_epoch(server_) != epoch_; }
  void epoch_sync() { epoch_ = kernel_.fault_epoch(server_); }

  kernel::InvokeResult invoke(const std::string& fn, const kernel::Args& args) {
    return kernel_.invoke(client_.id(), server_, fn, args);
  }

  /// Erroneous-return-value awareness (§III-C): an EINVAL for a descriptor
  /// this stub tracks is trustworthy only if the server was not rebooted
  /// since our last epoch sync — otherwise the descriptor was wiped between
  /// our recovery check and the invocation, and the op must be redone.
  bool einval_means_fault(const kernel::InvokeResult& res) {
    return res.ret == kernel::kErrInval && epoch_stale();
  }

  [[noreturn]] void redo_limit(const std::string& fn) {
    throw kernel::SystemCrash(kernel::CrashKind::kDoubleFault, server_,
                              "c3stub redo limit exceeded in " + fn);
  }

  static constexpr int kMaxRedos = 16;

  kernel::Kernel& kernel_;
  kernel::Component& client_;
  kernel::CompId server_;
  int epoch_ = 0;
};

}  // namespace sg::c3stubs
