// Hand-written C3 client stub for the event-notification interface — the
// most mechanism-heavy service ({R0,T0,T1,D1,G0,G1,U0}). Event ids are
// global, so the stub must (a) record each created event's creator in the
// storage component so the server stub can route recreation upcalls, and
// (b) export the recreation upcall handler itself (U0). Foreign descriptors
// (events created by another component) pass through untracked — their
// recovery is the server stub's G0 job.

#include <map>

#include "c3stubs/c3_stubs.hpp"
#include "c3stubs/cstub_common.hpp"
#include "util/assert.hpp"

namespace sg::c3stubs {

using kernel::Args;
using kernel::CallCtx;
using kernel::Value;

namespace {

class C3EvtStub final : public C3StubBase {
 public:
  // Dense fn ids: indices into the fn table declared below.
  enum Fn : c3::FnId { kSplit, kWait, kTrigger, kFree };

  C3EvtStub(kernel::Kernel& kernel, kernel::Component& client, kernel::CompId server,
            c3::StorageComponent& storage)
      : C3StubBase(kernel, client, server, {"evt_split", "evt_wait", "evt_trigger", "evt_free"}),
        storage_(storage),
        ns_(storage.intern_ns("evt")) {
    // U0: the server stub upcalls "sg_recreate_evt" on the creator.
    if (!client_.exports("sg_recreate_evt")) {
      client_.export_fn("sg_recreate_evt", [this](CallCtx&, const Args& args) -> Value {
        auto it = events_.find(args.at(0));
        if (it == events_.end()) return kernel::kErrInval;
        if (epoch_stale()) fault_update();
        it->second.faulty = true;
        recover(it->second);
        return kernel::kOk;
      });
    }
  }

  Value call_id(c3::FnId fn, const Args& args) override {
    if (epoch_stale()) fault_update();
    if (fn == kSplit) return do_split(args);
    SG_ASSERT_MSG(fn == kWait || fn == kTrigger || fn == kFree,
                  "c3 evt stub: unknown fn id " + std::to_string(fn));
    for (int redo = 0; redo < kMaxRedos; ++redo) {
      auto it = events_.find(args[1]);
      if (it != events_.end()) recover(it->second);
      // Global ids are stable: no sid translation needed, but recovery must
      // have happened before we invoke (T1).
      const auto res = invoke_id(fn, args);
      if (res.fault) {
        fault_update();
        continue;
      }
      if (einval_means_fault(res)) {
        fault_update();
        continue;
      }
      if (fn == kFree && res.ret == kernel::kOk && it != events_.end()) {
        storage_.erase_desc(ns_, it->first);
        events_.erase(it);
      }
      return res.ret;
    }
    redo_limit(fn);
  }

 private:
  struct Track {
    Value evtid;
    Value creator_comp;
    Value parent;
    Value grp;
    bool faulty;
  };

  void fault_update() {
    epoch_sync();
    for (auto& [evtid, track] : events_) track.faulty = true;
  }

  void recover(Track& track) {
    if (!track.faulty) return;
    track.faulty = false;
    for (int tries = 0; tries < kMaxRedos; ++tries) {
      // D1: a grouped event's parent must exist first. Parents we created
      // are recovered here; cross-component parents are the server stub's
      // G0 problem when the server touches them.
      auto parent_it = events_.find(track.parent);
      if (parent_it != events_.end()) recover(parent_it->second);
      const auto res =
          invoke_id(kSplit, {track.creator_comp, track.parent, track.grp, track.evtid});
      if (res.fault) {
        fault_update();
        track.faulty = false;
        continue;
      }
      SG_ASSERT_MSG(res.ret == track.evtid, "global event id changed across recovery");
      return;
    }
    redo_limit("evt recover");
  }

  Value do_split(const Args& args) {
    for (int redo = 0; redo < kMaxRedos; ++redo) {
      const auto res = invoke_id(kSplit, args);
      if (res.fault) {
        fault_update();
        continue;
      }
      if (einval_means_fault(res)) {
        fault_update();
        continue;
      }
      if (res.ret >= 0) {
        events_[res.ret] = Track{res.ret, args[0], args[1], args[2], false};
        // G0: record the creator so the server stub can find us.
        storage_.record_desc(ns_, res.ret,
                             {client_.id(), args[1], {{"grp", args[2]}}});
      }
      return res.ret;
    }
    redo_limit(kSplit);
  }

  c3::StorageComponent& storage_;
  c3::NsId ns_;  ///< Interned "evt" storage namespace.
  std::map<Value, Track> events_;
};

}  // namespace

std::unique_ptr<c3::Invoker> make_c3_evt_stub(components::System& system,
                                              kernel::Component& client) {
  return std::make_unique<C3EvtStub>(system.kernel(), client, system.evt().id(),
                                     system.storage());
}

}  // namespace sg::c3stubs
