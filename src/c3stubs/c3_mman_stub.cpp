// Hand-written C3 client stub for the memory-mapping manager (§II-D).
// Mappings form alias trees; recovery must rebuild a mapping's parents
// before the mapping itself (D1), and a release must rebuild the children
// first so recursive revocation has its side effects (D0). Aliases span
// components (XCParent), so creations are recorded in the storage component
// and a recreation upcall handler is exported for the server stub (U0).

#include <algorithm>
#include <map>
#include <vector>

#include "c3stubs/c3_stubs.hpp"
#include "c3stubs/cstub_common.hpp"
#include "util/assert.hpp"

namespace sg::c3stubs {

using kernel::Args;
using kernel::CallCtx;
using kernel::Value;

namespace {

class C3MmanStub final : public C3StubBase {
 public:
  // Dense fn ids: indices into the fn table declared below.
  enum Fn : c3::FnId { kGetPage, kAliasPage, kTouch, kReleasePage };

  C3MmanStub(kernel::Kernel& kernel, kernel::Component& client, kernel::CompId server,
             c3::StorageComponent& storage)
      : C3StubBase(kernel, client, server,
                   {"mman_get_page", "mman_alias_page", "mman_touch", "mman_release_page"}),
        storage_(storage),
        ns_(storage.intern_ns("mman")) {
    if (!client_.exports("sg_recreate_mman")) {
      client_.export_fn("sg_recreate_mman", [this](CallCtx&, const Args& args) -> Value {
        auto it = mappings_.find(args.at(0));
        if (it == mappings_.end()) return kernel::kErrInval;
        if (epoch_stale()) fault_update();
        it->second.faulty = true;
        recover(it->second);
        return kernel::kOk;
      });
    }
  }

  Value call_id(c3::FnId fn, const Args& args) override {
    if (epoch_stale()) fault_update();
    switch (fn) {
      case kGetPage: return do_get_page(args);
      case kAliasPage: return do_alias_page(args);
      case kTouch: return do_touch(args);
      case kReleasePage: return do_release(args);
    }
    SG_ASSERT_MSG(false, "c3 mman stub: unknown fn id " + std::to_string(fn));
    __builtin_unreachable();
  }

 private:
  struct Track {
    Value mapid;
    bool is_alias;
    // get_page creation args:
    Value vaddr;
    // alias_page creation args:
    Value parent;
    Value dst_comp;
    Value dst_vaddr;
    std::vector<Value> children;
    bool faulty;
  };

  void fault_update() {
    epoch_sync();
    for (auto& [mapid, track] : mappings_) track.faulty = true;
  }

  void recover(Track& track) {
    if (!track.faulty) return;
    track.faulty = false;
    for (int tries = 0; tries < kMaxRedos; ++tries) {
      // D1: rebuild the aliased-from chain up to the root mapping first.
      if (track.is_alias) {
        auto parent_it = mappings_.find(track.parent);
        if (parent_it != mappings_.end()) recover(parent_it->second);
        // A cross-component parent we did not create is rebuilt by the
        // server stub's storage lookup + upcall when the server misses it.
      }
      const auto res =
          track.is_alias
              ? invoke_id(kAliasPage,
                       {client_.id(), track.parent, track.dst_comp, track.dst_vaddr, track.mapid})
              : invoke_id(kGetPage, {client_.id(), track.vaddr, track.mapid});
      if (res.fault) {
        fault_update();
        track.faulty = false;
        continue;
      }
      SG_ASSERT_MSG(res.ret == track.mapid, "mapping id changed across recovery");
      return;
    }
    redo_limit("mman recover");
  }

  // D0: rebuild the whole subtree below a mapping (children before the
  // terminal revocation touches them).
  void recover_subtree(Track& track) {
    for (const Value child_id : track.children) {
      auto it = mappings_.find(child_id);
      if (it == mappings_.end()) continue;
      recover(it->second);
      recover_subtree(it->second);
    }
  }

  void erase_subtree(Value mapid) {
    auto it = mappings_.find(mapid);
    if (it == mappings_.end()) return;
    const std::vector<Value> kids = it->second.children;
    for (const Value child : kids) erase_subtree(child);
    it = mappings_.find(mapid);
    if (it == mappings_.end()) return;
    if (it->second.is_alias) {
      auto parent_it = mappings_.find(it->second.parent);
      if (parent_it != mappings_.end()) {
        auto& siblings = parent_it->second.children;
        siblings.erase(std::remove(siblings.begin(), siblings.end(), mapid), siblings.end());
      }
    }
    storage_.erase_desc(ns_, mapid);
    mappings_.erase(mapid);
  }

  Value do_get_page(const Args& args) {
    for (int redo = 0; redo < kMaxRedos; ++redo) {
      const auto res = invoke_id(kGetPage, args);
      if (res.fault) {
        fault_update();
        continue;
      }
      if (einval_means_fault(res)) {
        fault_update();
        continue;
      }
      if (res.ret >= 0) {
        Track track{};
        track.mapid = res.ret;
        track.is_alias = false;
        track.vaddr = args[1];
        mappings_[res.ret] = track;
        storage_.record_desc(ns_, res.ret, {client_.id(), 0, {{"vaddr", args[1]}}});
      }
      return res.ret;
    }
    redo_limit(kGetPage);
  }

  Value do_alias_page(const Args& args) {
    for (int redo = 0; redo < kMaxRedos; ++redo) {
      auto parent_it = mappings_.find(args[1]);
      if (parent_it != mappings_.end()) recover(parent_it->second);
      const auto res = invoke_id(kAliasPage, args);
      if (res.fault) {
        fault_update();
        continue;
      }
      if (einval_means_fault(res)) {
        fault_update();
        continue;
      }
      if (res.ret >= 0) {
        Track track{};
        track.mapid = res.ret;
        track.is_alias = true;
        track.parent = args[1];
        track.dst_comp = args[2];
        track.dst_vaddr = args[3];
        mappings_[res.ret] = track;
        if (parent_it != mappings_.end()) parent_it->second.children.push_back(res.ret);
        storage_.record_desc(ns_, res.ret, {client_.id(), args[1], {}});
      }
      return res.ret;
    }
    redo_limit(kAliasPage);
  }

  Value do_touch(const Args& args) {
    for (int redo = 0; redo < kMaxRedos; ++redo) {
      auto it = mappings_.find(args[1]);
      if (it != mappings_.end()) recover(it->second);
      const auto res = invoke_id(kTouch, args);
      if (res.fault) {
        fault_update();
        continue;
      }
      if (einval_means_fault(res)) {
        fault_update();
        continue;
      }
      return res.ret;
    }
    redo_limit(kTouch);
  }

  Value do_release(const Args& args) {
    for (int redo = 0; redo < kMaxRedos; ++redo) {
      auto it = mappings_.find(args[1]);
      if (it != mappings_.end()) {
        recover(it->second);
        recover_subtree(it->second);  // D0 before recursive revocation.
      }
      const auto res = invoke_id(kReleasePage, args);
      if (res.fault) {
        fault_update();
        continue;
      }
      if (einval_means_fault(res)) {
        fault_update();
        continue;
      }
      if (res.ret == kernel::kOk) erase_subtree(args[1]);
      return res.ret;
    }
    redo_limit(kReleasePage);
  }

  c3::StorageComponent& storage_;
  c3::NsId ns_;  ///< Interned "mman" storage namespace.
  std::map<Value, Track> mappings_;
};

}  // namespace

std::unique_ptr<c3::Invoker> make_c3_mman_stub(components::System& system,
                                               kernel::Component& client) {
  return std::make_unique<C3MmanStub>(system.kernel(), client, system.mman().id(),
                                      system.storage());
}

}  // namespace sg::c3stubs
