// Hand-written C3 client stub for the scheduler interface: tracks each
// registered thread's priority and re-registers it (sched_setup with the
// original tid as hint) after the scheduler is micro-rebooted. In-flight
// blocks simply redo — the thread re-blocks at its own priority.

#include <map>

#include "c3stubs/c3_stubs.hpp"
#include "c3stubs/cstub_common.hpp"
#include "util/assert.hpp"

namespace sg::c3stubs {

using kernel::Args;
using kernel::Value;

namespace {

class C3SchedStub final : public C3StubBase {
 public:
  // Dense fn ids: indices into the fn table declared below.
  enum Fn : c3::FnId { kSetup, kBlk, kWakeup, kExit };

  C3SchedStub(kernel::Kernel& kernel, kernel::Component& client, kernel::CompId server)
      : C3StubBase(kernel, client, server,
                   {"sched_setup", "sched_blk", "sched_wakeup", "sched_exit"}) {}

  Value call_id(c3::FnId fn, const Args& args) override {
    if (epoch_stale()) fault_update();
    if (fn == kSetup) return do_setup(args);
    // All other fns follow the same shape: recover the thread record on
    // demand, then redo the invocation across faults.
    SG_ASSERT_MSG(fn == kBlk || fn == kWakeup || fn == kExit,
                  "c3 sched stub: unknown fn id " + std::to_string(fn));
    for (int redo = 0; redo < kMaxRedos; ++redo) {
      auto it = threads_.find(args[1]);
      if (it != threads_.end()) recover(it->second);
      const auto res = invoke_id(fn, args);
      if (res.fault) {
        fault_update();
        continue;
      }
      if (einval_means_fault(res)) {
        fault_update();
        continue;
      }
      if (fn == kExit && res.ret == kernel::kOk) threads_.erase(args[1]);
      return res.ret;
    }
    redo_limit(fn);
  }

 private:
  struct Track {
    Value tid;
    Value prio;
    bool faulty;
  };

  void fault_update() {
    epoch_sync();
    for (auto& [tid, track] : threads_) track.faulty = true;
  }

  void recover(Track& track) {
    if (!track.faulty) return;
    track.faulty = false;
    for (int tries = 0; tries < kMaxRedos; ++tries) {
      // Re-register with the original tid as the id hint; the scheduler
      // itself reflects on kernel state to classify the thread (§II-F).
      const auto res = invoke_id(kSetup, {client_.id(), track.prio, track.tid});
      if (res.fault) {
        fault_update();
        track.faulty = false;
        continue;
      }
      return;
    }
    redo_limit("sched recover");
  }

  Value do_setup(const Args& args) {
    for (int redo = 0; redo < kMaxRedos; ++redo) {
      const auto res = invoke_id(kSetup, args);
      if (res.fault) {
        fault_update();
        continue;
      }
      if (einval_means_fault(res)) {
        fault_update();
        continue;
      }
      if (res.ret >= 0) threads_[res.ret] = Track{res.ret, args[1], false};
      return res.ret;
    }
    redo_limit(kSetup);
  }

  std::map<Value, Track> threads_;
};

}  // namespace

std::unique_ptr<c3::Invoker> make_c3_sched_stub(components::System& system,
                                                kernel::Component& client) {
  return std::make_unique<C3SchedStub>(system.kernel(), client, system.sched().id());
}

}  // namespace sg::c3stubs
