#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "supervisor/supervisor.hpp"
#include "swifi/swifi.hpp"
#include "util/stats.hpp"

namespace sg::campaign {

/// Configuration for a sharded SWIFI campaign: the million-injection
/// extension of the Table II experiment. A campaign is a matrix of cells
/// (target service x injection profile); every cell gets
/// `injections_per_cell` episodes, each on a fresh System under virtual
/// time. Episode seeds are pure functions of (master_seed, cell, episode),
/// so results are identical for every worker count and work-stealing order.
struct Config {
  std::uint64_t master_seed = 2016;
  std::uint64_t injections_per_cell = 200;
  /// Shard episodes across this many host threads (each runs disjoint
  /// Systems; the simulated machines never share mutable state).
  int workers = 1;
  /// Workload iterations per episode. Campaign episodes are deliberately
  /// shorter than the 400-iteration Table II runs: injection timing scales
  /// with this, and a ~5x shorter episode makes million-injection campaigns
  /// CI-feasible without changing the outcome distribution's shape.
  int workload_iterations = 80;
  /// Trace every episode and run the recovery-invariant checker on its
  /// event stream; violations are tallied per cell (and should be zero).
  bool check_invariants = false;
  components::FtMode mode = components::FtMode::kSuperGlue;
  c3::RecoveryPolicy policy = c3::RecoveryPolicy::kOnDemand;
  /// Supervisor policy installed in every episode's System. Transparent by
  /// default; enabling escalation makes Quarantined outcomes reachable
  /// (fail-stop-burst cells trip crash loops).
  supervisor::Policy supervision;
  /// Target services; empty means all six Table II components + storage.
  std::vector<std::string> services;
  /// Injection profiles; empty means just the register-flip profile.
  std::vector<swifi::InjectionProfile> profiles;
};

/// Per-cell outcome counts. Buckets are mutually exclusive and sum to
/// `injected`; invariant_violations and virtual_time_total ride alongside.
struct Tally {
  std::uint64_t injected = 0;
  std::uint64_t recovered = 0;
  std::uint64_t degraded = 0;
  std::uint64_t undetected = 0;
  std::uint64_t segfault = 0;
  std::uint64_t propagated = 0;
  std::uint64_t hang = 0;         ///< Whole-system hang/deadlock crashes.
  std::uint64_t quarantined = 0;  ///< Episodes ending with the target quarantined.
  std::uint64_t other = 0;
  std::uint64_t invariant_violations = 0;  ///< Checker findings (not a bucket).
  std::uint64_t virtual_time_total = 0;    ///< Sum of episode virtual end times.

  void add(const swifi::EpisodeResult& episode);
  /// Commutative, associative merge: partial tallies from any sharding
  /// combine to the same totals in any order.
  void merge(const Tally& other_tally);

  std::uint64_t activated() const { return injected - undetected; }
  /// Wilson 95% interval on the recovery success rate (recovered/activated).
  Interval recovery_ci() const { return wilson_interval(recovered, activated()); }
  /// Wilson 95% interval on the activation ratio (activated/injected).
  Interval activation_ci() const { return wilson_interval(activated(), injected); }
};

struct CellResult {
  std::string service;
  swifi::InjectionProfile profile = swifi::InjectionProfile::kRegisterFlip;
  Tally tally;
};

struct Result {
  std::vector<CellResult> cells;  ///< Canonical order: services x profiles.
  Tally total;
  std::uint64_t episodes() const { return total.injected; }
};

/// "service/profile", the seed-derivation tag for a cell (see
/// swifi::episode_seed).
std::string cell_tag(const std::string& service, swifi::InjectionProfile profile);

/// Runs the campaign. Deterministic for a given Config modulo `workers`
/// (which only changes wall time, never results).
Result run(const Config& config);

/// Canonical JSON for BENCH_table2_campaign.json: byte-identical across
/// same-seed runs (no wall-clock data, fixed float formatting, canonical
/// cell order).
std::string to_json(const Config& config, const Result& result);

/// Human-readable per-cell table with 95% CIs.
std::string format_table(const Result& result);

}  // namespace sg::campaign
