#include "campaign/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "components/lock.hpp"
#include "components/mem_mgr.hpp"
#include "components/ramfs.hpp"
#include "components/system.hpp"
#include "kernel/fault.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace sg::campaign {

using components::System;
using components::SystemConfig;
using kernel::CompId;
using kernel::Value;
using kernel::VirtualTime;

namespace {

/// One correlated fault burst, fully materialized up-front: which replicas
/// it hits and each replica's offset inside the correlation window.
struct FaultEvent {
  VirtualTime at = 0;
  std::vector<std::uint8_t> participates;
  std::vector<VirtualTime> offsets;
};

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a ^ (b * 0x9e3779b97f4a7c15ULL);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string fixed6(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.6f", value);
  return buffer;
}

ReplicaReport run_replica(const FleetConfig& config, int index,
                          const std::vector<FaultEvent>& schedule) {
  ReplicaReport report;
  report.index = index;
  const std::uint64_t total_windows = config.horizon / config.probe_period;
  report.window_up.assign(total_windows, 0);

  // Replicas are identical machines (same image, same System seed); only the
  // supervisor's jitter seed differs, so any divergence in recovery timing
  // is attributable to the jitter policy alone.
  SystemConfig sys_config;
  sys_config.cores = 1;  // Determinism: replicas parallelize across workers.
  sys_config.seed = mix64(config.master_seed, 0x5eedULL);
  sys_config.supervision = config.supervision;
  sys_config.supervision.backoff_jitter_pct = config.backoff_jitter_pct;
  sys_config.supervision.jitter_seed =
      mix64(config.master_seed, static_cast<std::uint64_t>(index) + 1);
  System sys(sys_config);
  auto& kern = sys.kernel();
  const CompId target = sys.service_component(config.service).id();
  auto& app = sys.create_app("probe-app");

  // The availability probe: one lightweight round-trip through the target
  // service per period. A probe parked at the admission gate (backoff hold)
  // completes late and only credits the window it finishes in — holds are
  // downtime. Quarantine fail-fasts are downtime too.
  kern.thd_create("probe", 10, [&] {
    components::MmClient mm(sys.invoker(app, "mman"));
    components::LockClient lock(sys.invoker(app, "lock"), kern);
    components::FsClient fs(sys.invoker(app, "ramfs"), sys.cbufs(), app.id());
    Value lock_id = 0;
    auto probe = [&]() -> bool {
      if (config.service == "lock") {
        if (lock_id <= 0) lock_id = lock.alloc(app.id());
        if (lock_id <= 0) return false;
        if (lock.take(app.id(), lock_id) != kernel::kOk) return false;
        return lock.release(app.id(), lock_id) == kernel::kOk;
      }
      if (config.service == "ramfs") {
        const Value fd = fs.open(4242);
        if (fd < 0) return false;
        if (fs.write(fd, "p") != 1) return false;
        fs.close(fd);
        return true;
      }
      const Value page = mm.get_page(app.id(), 0x400000);
      if (page <= 0) return false;
      return mm.release_page(app.id(), page) == kernel::kOk;
    };
    while (kern.clock().now() < config.horizon) {
      bool up = false;
      try {
        up = probe();
      } catch (const kernel::QuarantinedError&) {
        ++report.quarantine_failfasts;
      }
      if (up) {
        const std::uint64_t window = kern.clock().now() / config.probe_period;
        if (window < total_windows) report.window_up[window] = 1;
      }
      kern.block_current_until(kern.clock().now() + config.probe_period);
    }
  });

  // The correlated-fault injector: replays this replica's slice of the
  // shared schedule (participation and offsets were drawn up-front).
  kern.thd_create("correlated-faults", 5, [&] {
    for (const FaultEvent& event : schedule) {
      if (!event.participates[static_cast<std::size_t>(index)]) continue;
      const VirtualTime at = event.at + event.offsets[static_cast<std::size_t>(index)];
      if (kern.clock().now() < at) kern.block_current_until(at);
      if (kern.clock().now() >= config.horizon) break;
      for (int shot = 0; shot < config.burst; ++shot) {
        if (kern.is_quarantined(target)) break;
        kern.inject_crash(target);
        ++report.faults_injected;
      }
    }
  });

  try {
    kern.run();
  } catch (const kernel::SystemCrash&) {
    report.crashed = true;  // Down from here on; windows so far still count.
  }
  report.quarantined = kern.is_quarantined(target);
  report.supervision = sys.supervision().stats();
  for (const auto& event : sys.supervision().events()) {
    if (event.what == "hold") report.hold_expiries.push_back(event.hold_until);
  }
  for (const std::uint8_t up : report.window_up) report.up_windows += up;
  return report;
}

}  // namespace

FleetResult run_fleet(const FleetConfig& config) {
  SG_ASSERT(config.replicas >= 1);
  SG_ASSERT(config.probe_period > 0 && config.horizon >= config.probe_period);
  SG_ASSERT_MSG(config.service == "mman" || config.service == "lock" ||
                    config.service == "ramfs",
                "fleet probe supports mman/lock/ramfs");

  // Draw the whole correlated schedule before anything runs: event times,
  // per-replica participation, per-replica offsets. Replica execution order
  // (and host-thread interleaving) can then never perturb the fault pattern.
  Rng rng(mix64(config.master_seed, 0xf1ee7ULL));
  std::vector<FaultEvent> schedule(static_cast<std::size_t>(config.fault_events));
  for (FaultEvent& event : schedule) {
    event.at = config.horizon / 8 + rng.next_below(config.horizon / 2);
    event.participates.resize(static_cast<std::size_t>(config.replicas));
    event.offsets.resize(static_cast<std::size_t>(config.replicas));
    for (int r = 0; r < config.replicas; ++r) {
      event.participates[static_cast<std::size_t>(r)] = rng.chance(config.share_prob) ? 1 : 0;
      event.offsets[static_cast<std::size_t>(r)] =
          config.correlation_window > 0 ? rng.next_below(config.correlation_window) : 0;
    }
  }
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });

  FleetResult result;
  result.total_windows = config.horizon / config.probe_period;
  result.replicas.resize(static_cast<std::size_t>(config.replicas));

  const int workers = std::max(1, std::min(config.workers, config.replicas));
  std::atomic<int> next{0};
  auto drain = [&] {
    for (int r = next.fetch_add(1); r < config.replicas; r = next.fetch_add(1)) {
      result.replicas[static_cast<std::size_t>(r)] = run_replica(config, r, schedule);
    }
  };
  if (workers == 1) {
    drain();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(drain);
    for (std::thread& thread : pool) thread.join();
  }

  std::set<VirtualTime> expiries;
  std::map<VirtualTime, int> expiry_buckets;  // keyed by probe window index
  double availability_sum = 0.0;
  for (const ReplicaReport& replica : result.replicas) {
    availability_sum += result.total_windows == 0
                            ? 0.0
                            : static_cast<double>(replica.up_windows) /
                                  static_cast<double>(result.total_windows);
    result.total_holds += static_cast<int>(replica.hold_expiries.size());
    expiries.insert(replica.hold_expiries.begin(), replica.hold_expiries.end());
    for (const VirtualTime expiry : replica.hold_expiries) {
      ++expiry_buckets[expiry / config.probe_period];
    }
  }
  result.distinct_hold_expiries = static_cast<int>(expiries.size());
  for (const auto& [window, count] : expiry_buckets) {
    result.herd_peak = std::max(result.herd_peak, count);
  }
  result.mean_replica_availability = availability_sum / config.replicas;
  for (std::uint64_t w = 0; w < result.total_windows; ++w) {
    bool any_up = false;
    for (const ReplicaReport& replica : result.replicas) {
      if (replica.window_up[w] != 0) {
        any_up = true;
        break;
      }
    }
    if (any_up) {
      ++result.fleet_up_windows;
    } else {
      ++result.all_down_windows;
    }
  }
  result.fleet_availability = result.total_windows == 0
                                  ? 0.0
                                  : static_cast<double>(result.fleet_up_windows) /
                                        static_cast<double>(result.total_windows);
  return result;
}

std::string fleet_to_json(const FleetConfig& config, const FleetResult& result) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"benchmark\": \"fleet_correlated_faults\",\n";
  out << "  \"master_seed\": " << config.master_seed << ",\n";
  out << "  \"replicas\": " << config.replicas << ",\n";
  out << "  \"service\": \"" << config.service << "\",\n";
  out << "  \"fault_events\": " << config.fault_events << ",\n";
  out << "  \"burst\": " << config.burst << ",\n";
  out << "  \"share_prob\": " << fixed6(config.share_prob) << ",\n";
  out << "  \"correlation_window_us\": " << config.correlation_window << ",\n";
  out << "  \"horizon_us\": " << config.horizon << ",\n";
  out << "  \"probe_period_us\": " << config.probe_period << ",\n";
  out << "  \"backoff_jitter_pct\": " << config.backoff_jitter_pct << ",\n";
  out << "  \"total_windows\": " << result.total_windows << ",\n";
  out << "  \"fleet_availability\": " << fixed6(result.fleet_availability) << ",\n";
  out << "  \"mean_replica_availability\": " << fixed6(result.mean_replica_availability)
      << ",\n";
  out << "  \"all_down_windows\": " << result.all_down_windows << ",\n";
  out << "  \"total_holds\": " << result.total_holds << ",\n";
  out << "  \"distinct_hold_expiries\": " << result.distinct_hold_expiries << ",\n";
  out << "  \"herd_peak\": " << result.herd_peak << ",\n";
  out << "  \"replica_reports\": [\n";
  for (std::size_t r = 0; r < result.replicas.size(); ++r) {
    const ReplicaReport& replica = result.replicas[r];
    const double availability = result.total_windows == 0
                                    ? 0.0
                                    : static_cast<double>(replica.up_windows) /
                                          static_cast<double>(result.total_windows);
    out << "    {\"replica\": " << replica.index << ", \"availability\": "
        << fixed6(availability) << ", \"up_windows\": " << replica.up_windows
        << ", \"faults_injected\": " << replica.faults_injected
        << ", \"holds\": " << replica.hold_expiries.size()
        << ", \"quarantine_failfasts\": " << replica.quarantine_failfasts
        << ", \"crashed\": " << (replica.crashed ? "true" : "false")
        << ", \"quarantined\": " << (replica.quarantined ? "true" : "false") << "}"
        << (r + 1 < result.replicas.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

std::string format_fleet(const FleetConfig& config, const FleetResult& result) {
  std::ostringstream out;
  TextTable table;
  table.add_row({"Replica", "Availability", "Up windows", "Faults", "Holds", "Fail-fasts",
                 "Crashed", "Quarantined"});
  for (const ReplicaReport& replica : result.replicas) {
    const double availability = result.total_windows == 0
                                    ? 0.0
                                    : static_cast<double>(replica.up_windows) /
                                          static_cast<double>(result.total_windows);
    char pct[16];
    std::snprintf(pct, sizeof pct, "%.2f%%", availability * 100.0);
    table.add_row({std::to_string(replica.index), pct, std::to_string(replica.up_windows),
                   std::to_string(replica.faults_injected),
                   std::to_string(replica.hold_expiries.size()),
                   std::to_string(replica.quarantine_failfasts),
                   replica.crashed ? "yes" : "no", replica.quarantined ? "yes" : "no"});
  }
  out << table.render();
  char line[160];
  std::snprintf(line, sizeof line,
                "fleet availability %.4f over %llu windows (%llu all-down); "
                "holds %d, distinct expiries %d, herd peak %d, jitter %d%%\n",
                result.fleet_availability,
                static_cast<unsigned long long>(result.total_windows),
                static_cast<unsigned long long>(result.all_down_windows), result.total_holds,
                result.distinct_hold_expiries, result.herd_peak, config.backoff_jitter_pct);
  out << line;
  return out.str();
}

}  // namespace sg::campaign
