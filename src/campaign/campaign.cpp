#include "campaign/campaign.hpp"

#include <atomic>
#include <cstdio>
#include <sstream>
#include <thread>

#include "util/assert.hpp"

namespace sg::campaign {

void Tally::add(const swifi::EpisodeResult& episode) {
  ++injected;
  invariant_violations += static_cast<std::uint64_t>(episode.invariant_violations);
  virtual_time_total += episode.virtual_end;
  // One bucket per episode. Quarantine wins over the raw outcome: an episode
  // the supervisor ended by taking the target out of service is a policy
  // decision worth counting separately from how the workload limped along.
  if (episode.quarantined) {
    ++quarantined;
    return;
  }
  if (episode.crashed && (episode.crash_kind == kernel::CrashKind::kHang ||
                          episode.crash_kind == kernel::CrashKind::kDeadlock)) {
    ++hang;
    return;
  }
  switch (episode.outcome) {
    case swifi::Outcome::kRecovered: ++recovered; return;
    case swifi::Outcome::kDegraded: ++degraded; return;
    case swifi::Outcome::kUndetected: ++undetected; return;
    case swifi::Outcome::kSegfault: ++segfault; return;
    case swifi::Outcome::kPropagated: ++propagated; return;
    case swifi::Outcome::kOther: ++other; return;
  }
  ++other;
}

void Tally::merge(const Tally& other_tally) {
  injected += other_tally.injected;
  recovered += other_tally.recovered;
  degraded += other_tally.degraded;
  undetected += other_tally.undetected;
  segfault += other_tally.segfault;
  propagated += other_tally.propagated;
  hang += other_tally.hang;
  quarantined += other_tally.quarantined;
  other += other_tally.other;
  invariant_violations += other_tally.invariant_violations;
  virtual_time_total += other_tally.virtual_time_total;
}

std::string cell_tag(const std::string& service, swifi::InjectionProfile profile) {
  return service + "/" + swifi::to_string(profile);
}

namespace {

const std::vector<std::string>& all_services() {
  static const std::vector<std::string> kServices = {"sched", "mman", "ramfs", "lock",
                                                     "evt",   "tmr",  "storage"};
  return kServices;
}

struct Cell {
  std::string service;
  swifi::InjectionProfile profile;
  std::string tag;
};

}  // namespace

Result run(const Config& config) {
  const std::vector<std::string>& services =
      config.services.empty() ? all_services() : config.services;
  std::vector<swifi::InjectionProfile> profiles = config.profiles;
  if (profiles.empty()) profiles.push_back(swifi::InjectionProfile::kRegisterFlip);

  std::vector<Cell> cells;
  for (const std::string& service : services) {
    for (const swifi::InjectionProfile profile : profiles) {
      cells.push_back(Cell{service, profile, cell_tag(service, profile)});
    }
  }
  SG_ASSERT(!cells.empty());

  swifi::CampaignConfig swifi_config;
  swifi_config.seed = config.master_seed;
  swifi_config.mode = config.mode;
  swifi_config.policy = config.policy;
  const swifi::Campaign driver(swifi_config);

  swifi::EpisodeOptions options;
  options.workload_iterations = config.workload_iterations;
  options.check_invariants = config.check_invariants;
  options.supervision = config.supervision;

  const std::uint64_t per_cell = config.injections_per_cell;
  const std::uint64_t total_work = cells.size() * per_cell;
  const int workers = std::max(1, config.workers);

  // Shard by atomic work index. Worker w accumulates into its own tally row;
  // because episode seeds depend only on (master, cell, episode index), the
  // merged result is identical for every worker count and pull order.
  std::atomic<std::uint64_t> next{0};
  std::vector<std::vector<Tally>> partial(
      static_cast<std::size_t>(workers), std::vector<Tally>(cells.size()));
  auto drain = [&](int worker) {
    std::vector<Tally>& mine = partial[static_cast<std::size_t>(worker)];
    for (std::uint64_t item = next.fetch_add(1); item < total_work; item = next.fetch_add(1)) {
      const std::size_t cell_index = static_cast<std::size_t>(item / per_cell);
      const std::uint64_t episode = item % per_cell;
      const Cell& cell = cells[cell_index];
      swifi::EpisodeOptions episode_options = options;
      episode_options.profile = cell.profile;
      const std::uint64_t seed =
          swifi::episode_seed(config.master_seed, cell.tag, episode);
      mine[cell_index].add(driver.run_episode_detail(cell.service, seed, episode_options));
    }
  };
  if (workers == 1) {
    drain(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(drain, w);
    for (std::thread& thread : pool) thread.join();
  }

  Result result;
  result.cells.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    CellResult cell_result;
    cell_result.service = cells[c].service;
    cell_result.profile = cells[c].profile;
    for (int w = 0; w < workers; ++w) {
      cell_result.tally.merge(partial[static_cast<std::size_t>(w)][c]);
    }
    result.total.merge(cell_result.tally);
    result.cells.push_back(std::move(cell_result));
  }
  return result;
}

namespace {

/// Fixed-precision float formatting: the aggregate JSON must be
/// byte-identical across same-seed runs and across platforms, so every
/// double goes through one code path.
std::string fixed6(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.6f", value);
  return buffer;
}

void write_tally(std::ostringstream& out, const Tally& tally, const char* indent) {
  const Interval activation = tally.activation_ci();
  const Interval recovery = tally.recovery_ci();
  const double activation_ratio =
      tally.injected == 0
          ? 0.0
          : static_cast<double>(tally.activated()) / static_cast<double>(tally.injected);
  const double recovery_rate =
      tally.activated() == 0
          ? 0.0
          : static_cast<double>(tally.recovered) / static_cast<double>(tally.activated());
  out << indent << "\"injected\": " << tally.injected << ",\n"
      << indent << "\"recovered\": " << tally.recovered << ",\n"
      << indent << "\"degraded\": " << tally.degraded << ",\n"
      << indent << "\"undetected\": " << tally.undetected << ",\n"
      << indent << "\"segfault\": " << tally.segfault << ",\n"
      << indent << "\"propagated\": " << tally.propagated << ",\n"
      << indent << "\"hang\": " << tally.hang << ",\n"
      << indent << "\"quarantined\": " << tally.quarantined << ",\n"
      << indent << "\"other\": " << tally.other << ",\n"
      << indent << "\"invariant_violations\": " << tally.invariant_violations << ",\n"
      << indent << "\"virtual_time_total_us\": " << tally.virtual_time_total << ",\n"
      << indent << "\"activation_ratio\": " << fixed6(activation_ratio) << ",\n"
      << indent << "\"activation_ci95\": [" << fixed6(activation.lo) << ", "
      << fixed6(activation.hi) << "],\n"
      << indent << "\"recovery_rate\": " << fixed6(recovery_rate) << ",\n"
      << indent << "\"recovery_ci95\": [" << fixed6(recovery.lo) << ", " << fixed6(recovery.hi)
      << "]";
}

}  // namespace

std::string to_json(const Config& config, const Result& result) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"benchmark\": \"table2_campaign\",\n";
  out << "  \"master_seed\": " << config.master_seed << ",\n";
  out << "  \"injections_per_cell\": " << config.injections_per_cell << ",\n";
  out << "  \"workload_iterations\": " << config.workload_iterations << ",\n";
  out << "  \"mode\": \"" << components::to_string(config.mode) << "\",\n";
  out << "  \"supervised\": " << (config.supervision.loop_threshold > 0 ? "true" : "false")
      << ",\n";
  out << "  \"check_invariants\": " << (config.check_invariants ? "true" : "false") << ",\n";
  out << "  \"episodes\": " << result.episodes() << ",\n";
  out << "  \"cells\": [\n";
  for (std::size_t c = 0; c < result.cells.size(); ++c) {
    const CellResult& cell = result.cells[c];
    out << "    {\n";
    out << "      \"service\": \"" << cell.service << "\",\n";
    out << "      \"profile\": \"" << swifi::to_string(cell.profile) << "\",\n";
    write_tally(out, cell.tally, "      ");
    out << "\n    }" << (c + 1 < result.cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"total\": {\n";
  write_tally(out, result.total, "    ");
  out << "\n  }\n";
  out << "}\n";
  return out.str();
}

std::string format_table(const Result& result) {
  TextTable table;
  table.add_row({"Cell", "Injected", "Recovered", "Degraded", "Undetected", "Segfault",
                 "Propagated", "Hang", "Quarantined", "Other", "Violations",
                 "Recovery rate [95% CI]"});
  auto ci_cell = [](const Tally& tally) {
    const Interval ci = tally.recovery_ci();
    const double rate = tally.activated() == 0
                            ? 0.0
                            : static_cast<double>(tally.recovered) /
                                  static_cast<double>(tally.activated());
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.4f [%.4f, %.4f]", rate, ci.lo, ci.hi);
    return std::string(buffer);
  };
  for (const CellResult& cell : result.cells) {
    const Tally& t = cell.tally;
    table.add_row({cell_tag(cell.service, cell.profile), std::to_string(t.injected),
                   std::to_string(t.recovered), std::to_string(t.degraded),
                   std::to_string(t.undetected), std::to_string(t.segfault),
                   std::to_string(t.propagated), std::to_string(t.hang),
                   std::to_string(t.quarantined), std::to_string(t.other),
                   std::to_string(t.invariant_violations), ci_cell(t)});
  }
  const Tally& total = result.total;
  table.add_row({"TOTAL", std::to_string(total.injected), std::to_string(total.recovered),
                 std::to_string(total.degraded), std::to_string(total.undetected),
                 std::to_string(total.segfault), std::to_string(total.propagated),
                 std::to_string(total.hang), std::to_string(total.quarantined),
                 std::to_string(total.other), std::to_string(total.invariant_violations),
                 ci_cell(total)});
  return table.render();
}

}  // namespace sg::campaign
