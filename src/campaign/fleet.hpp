#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "supervisor/supervisor.hpp"

namespace sg::campaign {

/// Fleet mode: N identical System replicas (same image, same seed) run side
/// by side under a *correlated* fault schedule — the shared-mode failure
/// case single-replica SWIFI never sees. Every fault event names one
/// component-level fault burst; a replica participates with probability
/// `share_prob` and sees the burst at the event time plus a per-replica
/// offset inside `correlation_window` (a common-cause fault — bad input,
/// environment spike — rarely lands on every box in the same microsecond).
/// The whole schedule is drawn up-front from the master seed, so a fleet run
/// is deterministic regardless of how replicas are parallelized.
struct FleetConfig {
  int replicas = 3;
  /// The service the correlated faults hit, and that availability probes
  /// exercise. Supported probes: "mman", "lock", "ramfs".
  std::string service = "mman";
  int fault_events = 4;        ///< Correlated bursts over the horizon.
  int burst = 3;               ///< Fail-stop faults per burst per replica.
  double share_prob = 1.0;     ///< P(replica participates in an event).
  /// Per-replica arrival spread inside one event: each participating replica
  /// sees the burst at event time + uniform[0, correlation_window). 0 is the
  /// worst-case common-mode fault — every replica hit in the same virtual
  /// microsecond, which (without backoff jitter) makes them readmit in
  /// lockstep too.
  kernel::VirtualTime correlation_window = 0;
  kernel::VirtualTime horizon = 20000;          ///< Virtual run length (us).
  kernel::VirtualTime probe_period = 250;       ///< Availability window size.
  std::uint64_t master_seed = 2016;
  /// Base supervisor policy per replica. run_fleet overrides the jitter
  /// fields: backoff_jitter_pct from here, jitter_seed derived per replica.
  supervisor::Policy supervision;
  /// Seeded re-admission jitter (percent). 0 = lockstep baseline: identical
  /// replicas tripped by a shared fault all reopen their admission gates at
  /// the same virtual instant.
  int backoff_jitter_pct = 0;
  int workers = 1;  ///< Host threads running replicas concurrently.
};

struct ReplicaReport {
  int index = 0;
  std::uint64_t up_windows = 0;
  bool crashed = false;       ///< The replica's System went down entirely.
  bool quarantined = false;   ///< Target quarantined at end of horizon.
  int faults_injected = 0;
  int quarantine_failfasts = 0;
  supervisor::Stats supervision;
  /// Admission-gate reopen times ("hold" events), the lockstep signal.
  std::vector<kernel::VirtualTime> hold_expiries;
  /// Which availability windows saw >= 1 successful probe.
  std::vector<std::uint8_t> window_up;
};

struct FleetResult {
  std::vector<ReplicaReport> replicas;
  std::uint64_t total_windows = 0;
  std::uint64_t fleet_up_windows = 0;   ///< Windows with >= 1 replica up.
  std::uint64_t all_down_windows = 0;   ///< Windows with every replica down.
  double fleet_availability = 0.0;      ///< fleet_up_windows / total_windows.
  double mean_replica_availability = 0.0;
  /// Thundering-herd metrics. distinct_hold_expiries counts distinct reopen
  /// instants across the fleet (== total_holds means fully staggered).
  /// herd_peak is the sharper signal: the largest number of admission-gate
  /// reopenings, fleet-wide, landing inside any single probe window —
  /// replicas tripped by a correlated fault reopen together (peak ~=
  /// replicas) unless backoff jitter staggers them.
  int total_holds = 0;
  int distinct_hold_expiries = 0;
  int herd_peak = 0;
};

FleetResult run_fleet(const FleetConfig& config);

/// Canonical JSON (byte-identical across same-seed runs).
std::string fleet_to_json(const FleetConfig& config, const FleetResult& result);

/// Human-readable summary.
std::string format_fleet(const FleetConfig& config, const FleetResult& result);

}  // namespace sg::campaign
