#pragma once

#include <stdexcept>
#include <string>

namespace sg {

/// Thrown when an internal invariant of the simulator itself is violated.
/// Distinct from kernel::ComponentFault, which models a *simulated* fault
/// inside a component: an AssertionError is a bug in this codebase, never
/// part of a fault-injection experiment.
class AssertionError : public std::logic_error {
 public:
  explicit AssertionError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  throw AssertionError(std::string(file) + ":" + std::to_string(line) +
                       ": assertion failed: " + expr + (msg.empty() ? "" : " — " + msg));
}

}  // namespace sg

/// Always-on assertion (we never want invariant checks compiled out of a
/// fault-tolerance codebase). Throws sg::AssertionError on failure.
#define SG_ASSERT(expr)                                         \
  do {                                                          \
    if (!(expr)) sg::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define SG_ASSERT_MSG(expr, msg)                                  \
  do {                                                            \
    if (!(expr)) sg::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)
