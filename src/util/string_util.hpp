#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sg {

/// Strips leading and trailing whitespace.
std::string trim(std::string_view text);

/// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char delim);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool ends_with(std::string_view text, std::string_view suffix);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string text, std::string_view from, std::string_view to);

}  // namespace sg
