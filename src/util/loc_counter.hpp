#pragma once

#include <string>

namespace sg {

/// Counts effective lines of code: non-blank lines that are not entirely a
/// comment. Supports // line comments and /* */ block comments (C, C++, and
/// SuperGlue IDL all share this comment syntax). Used for the Fig 6(c)
/// LOC comparison between IDL specs, generated stubs, and hand-written C3
/// stubs.
int count_loc(const std::string& source);

/// Reads the file and counts its effective LOC; throws std::runtime_error if
/// the file cannot be opened.
int count_loc_file(const std::string& path);

}  // namespace sg
