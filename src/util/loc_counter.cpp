#include "util/loc_counter.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sg {

int count_loc(const std::string& source) {
  int loc = 0;
  bool in_block_comment = false;
  std::istringstream stream(source);
  std::string line;
  while (std::getline(stream, line)) {
    bool has_code = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block_comment) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      const char c = line[i];
      if (c == ' ' || c == '\t' || c == '\r') continue;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        ++i;
        continue;
      }
      has_code = true;
    }
    if (has_code) ++loc;
  }
  return loc;
}

int count_loc_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("count_loc_file: cannot open " + path);
  std::ostringstream contents;
  contents << file.rdbuf();
  return count_loc(contents.str());
}

}  // namespace sg
