#pragma once

#include <cstdint>
#include <limits>

namespace sg {

/// Deterministic, seedable PRNG (xoshiro256**). Every stochastic element of
/// the simulator (SWIFI target selection, bit positions, workload jitter)
/// draws from an explicitly seeded Rng so campaigns are reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& word : state_) word = next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) for bound >= 1.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform double in [0, 1).
  double next_double() { return (next_u64() >> 11) * (1.0 / 9007199254740992.0); }

  /// Bernoulli draw with success probability p.
  bool chance(double p) { return next_double() < p; }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t state_[4]{};
};

}  // namespace sg
