#include "util/log.hpp"

#include <atomic>

namespace sg::log {
namespace {

std::atomic<Level> g_level{Level::kWarn};
std::mutex g_emit_mutex;

const char* level_name(Level level) {
  switch (level) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void emit(Level lvl, const std::string& tag, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %-10s %s\n", level_name(lvl), tag.c_str(), msg.c_str());
}

}  // namespace sg::log
