#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace sg {

void OnlineStats::add(double sample) {
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stdev() const { return std::sqrt(variance()); }

std::string OnlineStats::summary(int precision) const {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(precision);
  oss << mean() << " (" << stdev() << ")";
  return oss.str();
}

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials, double z) {
  SG_ASSERT_MSG(successes <= trials, "more successes than trials");
  if (trials == 0) return Interval{0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p_hat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p_hat + z2 / (2.0 * n)) / denom;
  const double margin =
      (z / denom) * std::sqrt(p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n));
  Interval interval{std::max(0.0, center - margin), std::min(1.0, center + margin)};
  // The score interval's bounds at the extremes are exact: no successes can
  // never exclude 0, and all successes can never exclude 1.
  if (successes == 0) interval.lo = 0.0;
  if (successes == trials) interval.hi = 1.0;
  return interval;
}

double percentile(std::vector<double> samples, double p) {
  SG_ASSERT_MSG(!samples.empty(), "percentile of empty sample set");
  SG_ASSERT(p >= 0.0 && p <= 100.0);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double rank = (p / 100.0) * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

void TextTable::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string TextTable::render() const {
  if (rows_.empty()) return "";
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  }
  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      oss << "| " << row[i] << std::string(widths[i] - row[i].size() + 1, ' ');
    }
    oss << "|\n";
  };
  emit_row(rows_.front());
  for (std::size_t i = 0; i < widths.size(); ++i) {
    oss << "|" << std::string(widths[i] + 2, '-');
  }
  oss << "|\n";
  for (std::size_t r = 1; r < rows_.size(); ++r) emit_row(rows_[r]);
  return oss.str();
}

}  // namespace sg
