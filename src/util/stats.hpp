#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sg {

/// Streaming mean / variance accumulator (Welford). Used by the benchmark
/// harnesses to report "average (stdev)" values like the paper's Fig 6.
class OnlineStats {
 public:
  void add(double sample);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;  ///< Sample variance (n-1 denominator); 0 if n < 2.
  double stdev() const;
  double min() const { return min_; }
  double max() const { return max_; }

  /// "12.34 (0.56)" — mean with stdev, for tabular output.
  std::string summary(int precision = 2) const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch percentile helper; copies and sorts. p is in [0, 100].
double percentile(std::vector<double> samples, double p);

/// Simple fixed-width text table used by bench binaries to print
/// paper-style rows. Columns are sized to the widest cell.
class TextTable {
 public:
  void add_row(std::vector<std::string> cells);
  /// Renders with a header separator after the first row.
  std::string render() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sg
