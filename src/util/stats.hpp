#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sg {

/// Streaming mean / variance accumulator (Welford). Used by the benchmark
/// harnesses to report "average (stdev)" values like the paper's Fig 6.
class OnlineStats {
 public:
  void add(double sample);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;  ///< Sample variance (n-1 denominator); 0 if n < 2.
  double stdev() const;
  double min() const { return min_; }
  double max() const { return max_; }

  /// "12.34 (0.56)" — mean with stdev, for tabular output.
  std::string summary(int precision = 2) const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch percentile helper; copies and sorts. p is in [0, 100].
double percentile(std::vector<double> samples, double p);

/// A two-sided confidence interval for a binomial proportion.
struct Interval {
  double lo = 0.0;
  double hi = 1.0;
};

/// Wilson score interval for `successes` out of `trials` at critical value
/// `z` (1.96 ~ 95%). Unlike the normal approximation it stays inside [0, 1]
/// and behaves sensibly at the edges the SWIFI campaigns actually hit:
/// trials == 0 returns the vacuous [0, 1]; p-hat == 0 keeps lo exactly 0 and
/// p-hat == 1 keeps hi exactly 1 (the interval is still informative on the
/// open side, e.g. 0/50 excludes rates above ~7%).
Interval wilson_interval(std::uint64_t successes, std::uint64_t trials, double z = 1.96);

/// Simple fixed-width text table used by bench binaries to print
/// paper-style rows. Columns are sized to the widest cell.
class TextTable {
 public:
  void add_row(std::vector<std::string> cells);
  /// Renders with a header separator after the first row.
  std::string render() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sg
