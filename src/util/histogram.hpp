#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sg {

/// HdrHistogram-style log-bucketed value recorder for virtual-time latencies.
///
/// Values are bucketed log-linearly: below 2^kSubBits every integer gets its
/// own bucket (exact); above that, each power-of-two range is split into
/// 2^kSubBits linear sub-buckets, bounding the relative quantization error of
/// any recorded value by 2^-kSubBits (~3.1%). Recording is O(1) with no
/// allocation on the hot path (the bucket array is sized at construction),
/// which is what lets the open-loop load generator record one latency per
/// request at hundreds of thousands of requests per run.
///
/// percentile(p) returns the *upper bound* of the bucket holding the p-th
/// value (the largest value that could have been recorded there), using the
/// same rank definition as a brute-force sort: the smallest recorded bucket
/// whose cumulative count reaches ceil(p/100 * total). So for any recorded
/// sample set, exact <= percentile(p) <= exact * (1 + 2^-kSubBits) — the
/// property the unit tests assert against a sorted-vector oracle.
///
/// Deterministic: the same sequence of record() calls (in any order) yields
/// identical buckets, so two seeded open-loop runs render byte-identical
/// percentile JSON. Not internally synchronized — callers either own one
/// histogram per thread and merge(), or record under their own lock.
class LogHistogram {
 public:
  static constexpr int kSubBits = 5;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBits;  // 32

  LogHistogram() : counts_(index_of(~0ull) + 1, 0) {}

  void record(std::uint64_t value) {
    if (value == 0) value = 1;  // Latencies are >= 1 virtual µs by definition.
    ++counts_[index_of(value)];
    ++count_;
    sum_ += value;
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  /// Adds every bucket of `other` into this histogram (commutative, so
  /// per-worker histograms merge into one deterministic aggregate).
  void merge(const LogHistogram& other) {
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_; }

  /// p in [0, 100]. Returns the upper bound of the bucket containing the
  /// value of rank ceil(p/100 * count) (1-based), 0 if empty.
  std::uint64_t percentile(double p) const {
    if (count_ == 0) return 0;
    if (p < 0.0) p = 0.0;
    if (p > 100.0) p = 100.0;
    std::uint64_t rank = static_cast<std::uint64_t>(p / 100.0 * count_ + 0.9999999);
    if (rank < 1) rank = 1;
    if (rank > count_) rank = count_;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      cumulative += counts_[i];
      if (cumulative >= rank) return bucket_high(i);
    }
    return bucket_high(counts_.size() - 1);
  }

  /// Lowest value mapping to bucket `index` (exposed for tests).
  static std::uint64_t bucket_low(std::size_t index) {
    if (index < kSubBuckets) return index;
    const std::uint64_t shift = (index >> kSubBits) - 1;
    const std::uint64_t sub = index & (kSubBuckets - 1);
    return (kSubBuckets + sub) << shift;
  }

  /// Highest value mapping to bucket `index` (exposed for tests).
  static std::uint64_t bucket_high(std::size_t index) {
    if (index < kSubBuckets) return index;
    const std::uint64_t shift = (index >> kSubBits) - 1;
    return bucket_low(index) + ((1ull << shift) - 1);
  }

  /// Bucket index for `value` (exposed for tests).
  static std::size_t index_of(std::uint64_t value) {
    if (value < kSubBuckets) return static_cast<std::size_t>(value);
    int hi = 63;
    while ((value >> hi) == 0) --hi;  // hi = floor(log2(value)) >= kSubBits.
    const int shift = hi - kSubBits;
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(shift + 1) << kSubBits) +
        ((value >> shift) - kSubBuckets));
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

}  // namespace sg
