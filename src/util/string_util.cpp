#include "util/string_util.hpp"

#include "util/assert.hpp"

namespace sg {

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string replace_all(std::string text, std::string_view from, std::string_view to) {
  SG_ASSERT_MSG(!from.empty(), "replace_all: empty needle");
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

}  // namespace sg
