#pragma once

#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>

namespace sg::log {

enum class Level { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global log threshold; messages below it are dropped. Defaults to kWarn so
/// tests and benchmarks stay quiet; examples raise it to kInfo.
void set_level(Level level);
Level level();

/// Thread-safe formatted emission to stderr. Prefer the SG_LOG_* macros.
void emit(Level level, const std::string& tag, const std::string& msg);

}  // namespace sg::log

#define SG_LOG_AT(lvl, tag, ...)                                       \
  do {                                                                 \
    if (static_cast<int>(lvl) >= static_cast<int>(sg::log::level())) { \
      std::ostringstream sg_log_oss_;                                  \
      sg_log_oss_ << __VA_ARGS__;                                      \
      sg::log::emit(lvl, tag, sg_log_oss_.str());                      \
    }                                                                  \
  } while (0)

#define SG_TRACE(tag, ...) SG_LOG_AT(sg::log::Level::kTrace, tag, __VA_ARGS__)
#define SG_DEBUG(tag, ...) SG_LOG_AT(sg::log::Level::kDebug, tag, __VA_ARGS__)
#define SG_INFO(tag, ...) SG_LOG_AT(sg::log::Level::kInfo, tag, __VA_ARGS__)
#define SG_WARN(tag, ...) SG_LOG_AT(sg::log::Level::kWarn, tag, __VA_ARGS__)
#define SG_ERROR(tag, ...) SG_LOG_AT(sg::log::Level::kError, tag, __VA_ARGS__)
