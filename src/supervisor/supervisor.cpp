#include "supervisor/supervisor.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace sg::supervisor {

using kernel::CompId;
using kernel::VirtualTime;

const char* to_string(Level level) {
  switch (level) {
    case Level::kMicroReboot: return "micro-reboot";
    case Level::kGroupReboot: return "group-reboot";
    case Level::kQuarantined: return "quarantined";
  }
  return "?";
}

Supervisor::Supervisor(kernel::Kernel& kernel, Policy policy)
    : kernel_(kernel), policy_(policy) {
  kernel_.set_fault_supervisor([this](CompId comp) { on_fault(comp); });
}

Supervisor::~Supervisor() { kernel_.set_fault_supervisor(nullptr); }

void Supervisor::add_dependency(CompId dependent, CompId on) {
  // Edges are wired at System-build time only. Frozen-while-running is what
  // makes dependents_of a lock-free snapshot: group-reboot membership walks
  // rdeps_ from whichever core vectored the fault without any lock.
  SG_ASSERT_MSG(!kernel_.is_running(),
                "add_dependency while the kernel is running: rdeps_ must stay "
                "immutable so group-reboot membership is a lock-free snapshot");
  rdeps_[on].push_back(dependent);
}

std::vector<CompId> Supervisor::dependents_of(CompId comp) const {
  // Safe from any core without the scheduler lock: rdeps_ is frozen while
  // the kernel runs (asserted in add_dependency), so this BFS reads an
  // immutable snapshot. Membership decisions made from it (group reboots)
  // additionally run under the fault's recovery domain — asserted at the use
  // site. This closure is also exactly what the kernel's domain resolver
  // claims when a fault in `comp` is vectored.
  std::vector<CompId> order;
  std::unordered_set<CompId> seen{comp};
  std::deque<CompId> frontier{comp};
  while (!frontier.empty()) {
    const CompId cur = frontier.front();
    frontier.pop_front();
    auto it = rdeps_.find(cur);
    if (it == rdeps_.end()) continue;
    // Canonical CompId order per BFS level: group-reboot sweeps and schedule
    // replay (src/explore) need identical dependent ordering across runs,
    // independent of dependency-registration order.
    std::vector<CompId> level = it->second;
    std::sort(level.begin(), level.end());
    for (const CompId dep : level) {
      if (!seen.insert(dep).second) continue;
      order.push_back(dep);
      frontier.push_back(dep);
    }
  }
  return order;
}

void Supervisor::prune_window(Track& track, VirtualTime now) {
  const VirtualTime horizon = now >= policy_.loop_window ? now - policy_.loop_window : 0;
  while (!track.history.empty() && track.history.front() < horizon) {
    track.history.pop_front();
  }
}

void Supervisor::note_locked(CompId comp, Level level, const char* what, VirtualTime at,
                             VirtualTime hold_until) {
  events_.push_back(Event{at, comp, level, what, hold_until});
}

VirtualTime Supervisor::backoff_for(int trip) const {
  SG_ASSERT(trip >= 1);
  VirtualTime backoff = policy_.backoff_initial;
  for (int i = 1; i < trip; ++i) {
    if (backoff >= policy_.backoff_max / 2) return policy_.backoff_max;
    backoff *= 2;
  }
  return std::min(backoff, policy_.backoff_max);
}

VirtualTime Supervisor::jittered_backoff(CompId comp, int trip) const {
  const VirtualTime base = backoff_for(trip);
  if (policy_.backoff_jitter_pct <= 0) return base;
  // splitmix64 over (seed, comp, trip): a pure function of the policy seed,
  // so reruns with the same seed reproduce every hold exactly while replicas
  // seeded differently spread their holds across [base, base * (1 + pct)).
  std::uint64_t x = policy_.jitter_seed ^ (static_cast<std::uint64_t>(comp) * 0x9e3779b97f4a7c15ULL) ^
                    (static_cast<std::uint64_t>(trip) * 0xbf58476d1ce4e5b9ULL);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  const VirtualTime span = base * static_cast<VirtualTime>(policy_.backoff_jitter_pct) / 100;
  return base + (span > 0 ? x % span : 0);
}

void Supervisor::reboot_at_level(CompId comp, Track& track) {
  switch (track.level) {
    case Level::kMicroReboot:
      {
        std::lock_guard<std::mutex> lock(mtx_);
        ++stats_.micro_reboots;
        note_locked(comp, track.level, "micro-reboot", kernel_.now());
      }
      kernel_.perform_micro_reboot(comp);
      return;
    case Level::kGroupReboot: {
      // Membership + the member reboots must be atomic with respect to other
      // recoveries: the caller's domain (held since on_fault) covers the
      // group, and escalating to the machine guarantees no concurrent
      // recovery mutates quarantine state mid-sweep at cores>1.
      SG_ASSERT_MSG(kernel_.recovery_token_held_by_caller(),
                    "group reboot outside a recovery domain");
      kernel_.escalate_recovery_to_machine(kernel::Kernel::kEscalateGroupReboot);
      {
        std::lock_guard<std::mutex> lock(mtx_);
        ++stats_.group_reboots;
        note_locked(comp, track.level, "group-reboot", kernel_.now());
      }
      const std::vector<CompId> group = dependents_of(comp);
      kernel_.trace(trace::EventKind::kSupGroupReboot, comp,
                    static_cast<std::int32_t>(group.size()));
      kernel_.perform_micro_reboot(comp);
      for (const CompId dep : group) {
        if (kernel_.is_quarantined(dep)) continue;
        SG_DEBUG("supervisor", "group reboot of " << comp << " takes dependent " << dep);
        {
          std::lock_guard<std::mutex> lock(mtx_);
          ++stats_.group_members_rebooted;
        }
        kernel_.trace(trace::EventKind::kSupGroupMember, dep, 0, 0, 0,
                      static_cast<std::int64_t>(comp));
        kernel_.perform_micro_reboot(dep);
      }
      return;
    }
    case Level::kQuarantined:
      // Quarantine unwinds blocked threads machine-wide; take the machine so
      // no disjoint recovery is mid-walk through the threads being unwound.
      kernel_.escalate_recovery_to_machine(kernel::Kernel::kEscalateQuarantine);
      {
        std::lock_guard<std::mutex> lock(mtx_);
        ++stats_.quarantines;
        note_locked(comp, track.level, "quarantine", kernel_.now());
      }
      SG_DEBUG("supervisor", "quarantining comp " << comp);
      kernel_.quarantine(comp);
      return;
  }
}

void Supervisor::on_fault(CompId comp) {
  // The kernel vectors faults under a recovery domain covering this
  // component's closure (cores>1). Same-component recoveries are therefore
  // serialized, but disjoint domains run on_fault concurrently — mtx_
  // guards the shared maps with short holds, never across a kernel call
  // that can block (reboot, quarantine, hold).
  SG_ASSERT_MSG(kernel_.recovery_token_held_by_caller(),
                "on_fault outside a recovery domain");
  const std::int64_t owner = kernel_.recovery_owner_key();
  const VirtualTime now = kernel_.now();
  Track* track = nullptr;
  bool nested = false;
  Level level_at_fault = Level::kMicroReboot;
  {
    std::lock_guard<std::mutex> lock(mtx_);
    ++stats_.faults;
    track = &tracks_[comp];
    track->history.push_back(now);
    prune_window(*track, now);
    nested = depth_[owner] > 0;
    level_at_fault = track->level;
    if (nested) {
      ++stats_.faults_during_recovery;
      note_locked(comp, track->level, "nested-fault", now);
    }
  }

  if (nested) {
    // Fault during recovery: the replay (or a group member's reboot) crashed
    // the component again while the outer recovery is still unwinding.
    // Charge the history (so it counts toward the next crash-loop decision)
    // and clear the fault with a plain micro-reboot immediately -- the
    // client stub's bounded redo depends on the component coming back.
    // Escalation is deferred to the next top-level fault: escalating here
    // could quarantine a component the outer recovery is mid-replay against.
    kernel_.trace(trace::EventKind::kSupNestedFault, comp,
                  static_cast<std::int32_t>(level_at_fault));
    SG_DEBUG("supervisor", "nested fault in comp " << comp << " (owner " << owner << ")");
    kernel_.perform_micro_reboot(comp);
    return;
  }

  struct DepthGuard {
    Supervisor& sup;
    std::int64_t owner;
    DepthGuard(Supervisor& s, std::int64_t o) : sup(s), owner(o) {
      std::lock_guard<std::mutex> lock(sup.mtx_);
      ++sup.depth_[owner];
    }
    ~DepthGuard() {
      std::lock_guard<std::mutex> lock(sup.mtx_);
      --sup.depth_[owner];
    }
  } guard(*this, owner);

  bool tripped = false;
  int total_trips_now = 0;
  {
    std::lock_guard<std::mutex> lock(mtx_);
    note_locked(comp, track->level, "fault", now);
    kernel_.trace(trace::EventKind::kSupFault, comp, static_cast<std::int32_t>(track->level));
    tripped = policy_.loop_threshold > 0 &&
              static_cast<int>(track->history.size()) >= policy_.loop_threshold;
    if (tripped) {
      ++stats_.crash_loop_trips;
      ++track->total_trips;
      ++track->trips_at_level;
      total_trips_now = track->total_trips;
      track->history.clear();
      note_locked(comp, track->level, "trip", now);
      kernel_.trace(trace::EventKind::kSupTrip, comp, static_cast<std::int32_t>(track->level),
                    track->total_trips);
      SG_DEBUG("supervisor", "crash loop tripped for comp " << comp << " (trip "
                              << track->total_trips << ", level " << to_string(track->level)
                              << ")");
      if (track->trips_at_level >= policy_.trips_per_level &&
          track->level != Level::kQuarantined) {
        track->level = static_cast<Level>(static_cast<int>(track->level) + 1);
        track->trips_at_level = 0;
        kernel_.trace(trace::EventKind::kSupEscalate, comp,
                      static_cast<std::int32_t>(track->level));
      }
    }
  }

  // track stays valid across the unlock (map references are stable) and
  // track->level cannot change concurrently: only this domain recovers this
  // component while its closure is claimed.
  reboot_at_level(comp, *track);

  // Exponential re-admission backoff after every trip (quarantine makes a
  // hold moot: the gate fails fast instead of parking clients).
  if (tripped && track->level != Level::kQuarantined) {
    const VirtualTime backoff = jittered_backoff(comp, total_trips_now);
    SG_DEBUG("supervisor", "holding comp " << comp << " for " << backoff << "us");
    const VirtualTime until = kernel_.now() + backoff;
    {
      std::lock_guard<std::mutex> lock(mtx_);
      ++stats_.backoff_holds;
      note_locked(comp, track->level, "hold", kernel_.now(), until);
    }
    kernel_.hold_component(comp, until);
  }
}

void Supervisor::readmit(CompId comp) {
  // Manual readmission races concurrent fault vectoring at cores>1: take a
  // recovery domain over the component's closure for the whole
  // reset-and-reboot so a same-component on_fault never interleaves —
  // while readmission of one domain never holds up recovery (or
  // readmission) of a disjoint one.
  kernel::Kernel::DomainLock recovery(kernel_, comp);
  const std::int64_t owner = kernel_.recovery_owner_key();
  {
    std::lock_guard<std::mutex> lock(mtx_);
    SG_ASSERT(depth_[owner] == 0);
    ++stats_.readmits;
    tracks_[comp] = Track{};
    note_locked(comp, Level::kMicroReboot, "readmit", kernel_.now());
  }
  kernel_.trace(trace::EventKind::kSupReadmit, comp);
  kernel_.readmit(comp);
  // Fresh start from the pristine image: the epoch bump also re-marks every
  // cached descriptor faulty, so clients rebuild state on their next call.
  struct DepthGuard {
    Supervisor& sup;
    std::int64_t owner;
    DepthGuard(Supervisor& s, std::int64_t o) : sup(s), owner(o) {
      std::lock_guard<std::mutex> lock(sup.mtx_);
      ++sup.depth_[owner];
    }
    ~DepthGuard() {
      std::lock_guard<std::mutex> lock(sup.mtx_);
      --sup.depth_[owner];
    }
  } guard(*this, owner);
  kernel_.perform_micro_reboot(comp);
}

Level Supervisor::level_of(CompId comp) const {
  std::lock_guard<std::mutex> lock(mtx_);
  auto it = tracks_.find(comp);
  return it == tracks_.end() ? Level::kMicroReboot : it->second.level;
}

int Supervisor::trips_of(CompId comp) const {
  std::lock_guard<std::mutex> lock(mtx_);
  auto it = tracks_.find(comp);
  return it == tracks_.end() ? 0 : it->second.total_trips;
}

int Supervisor::history_of(CompId comp) const {
  std::lock_guard<std::mutex> lock(mtx_);
  auto it = tracks_.find(comp);
  return it == tracks_.end() ? 0 : static_cast<int>(it->second.history.size());
}

std::string Supervisor::format_report() const {
  TextTable table;
  table.add_row({"Component", "Level", "Trips", "Window faults", "Held until", "Quarantined"});
  std::lock_guard<std::mutex> lock(mtx_);
  std::vector<CompId> ids;
  ids.reserve(tracks_.size());
  for (const auto& [comp, track] : tracks_) ids.push_back(comp);
  std::sort(ids.begin(), ids.end());
  for (const CompId comp : ids) {
    const Track& track = tracks_.at(comp);
    table.add_row({kernel_.component(comp).name(), to_string(track.level),
                   std::to_string(track.total_trips), std::to_string(track.history.size()),
                   std::to_string(kernel_.held_until(comp)),
                   kernel_.is_quarantined(comp) ? "yes" : "no"});
  }
  return table.render();
}

}  // namespace sg::supervisor
