#pragma once

#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernel/kernel.hpp"

namespace sg::supervisor {

/// Escalation chain of the recovery supervisor, applied per component in
/// order. Level 0 is the paper's transparent C3 recovery; levels 1 and 2 are
/// the system-level policies layered on top when micro-reboots alone fail to
/// clear the fault (a crash loop).
enum class Level {
  kMicroReboot = 0,  ///< Reboot just the faulty component (C3 default).
  kGroupReboot = 1,  ///< Reboot it together with its transitive dependents.
  kQuarantined = 2,  ///< Take it out of service; clients fail fast.
};

const char* to_string(Level level);

/// Tunables for crash-loop detection and escalation. The default policy is
/// *transparent*: loop_threshold == 0 disables detection entirely, so a
/// system without an explicit policy behaves exactly like plain C3 recovery
/// (every fault is a micro-reboot, no holds, no quarantine).
struct Policy {
  /// A crash loop trips when this many reboots of one component land within
  /// `loop_window` of virtual time. 0 disables detection (observe-only).
  int loop_threshold = 0;
  kernel::VirtualTime loop_window = 1000;

  /// Re-admission backoff after a crash-loop trip: clients of the component
  /// are held at the kernel's admission gate for backoff_initial * 2^(trip-1)
  /// virtual microseconds, capped at backoff_max.
  kernel::VirtualTime backoff_initial = 100;
  kernel::VirtualTime backoff_max = 10000;

  /// Crash-loop trips tolerated at one escalation level before moving to the
  /// next (micro-reboot -> group reboot -> quarantine).
  int trips_per_level = 2;

  /// Deterministic seeded jitter on the re-admission backoff, as a percent of
  /// the exponential hold (0 disables it and keeps holds exactly at
  /// backoff_initial * 2^(trip-1)). Fleet campaigns set this: replicas
  /// tripped by a correlated fault would otherwise all release their holds at
  /// the same virtual instant and readmit in lockstep — a thundering-herd
  /// recovery storm. The stretch for a given (component, trip) is drawn
  /// reproducibly from jitter_seed, so campaign runs stay seed-reproducible:
  /// same seed, same holds; different replica seeds, staggered holds.
  int backoff_jitter_pct = 0;
  std::uint64_t jitter_seed = 0;
};

/// Counters the SWIFI stress campaigns and benchmarks report.
struct Stats {
  int faults = 0;                  ///< Faults vectored to the supervisor.
  int micro_reboots = 0;           ///< Level-0 reboots performed.
  int group_reboots = 0;           ///< Level-1 group reboots performed.
  int group_members_rebooted = 0;  ///< Dependents rebooted inside groups.
  int quarantines = 0;             ///< Level-2 quarantine transitions.
  int readmits = 0;                ///< Manual readmit() calls.
  int crash_loop_trips = 0;        ///< Times the sliding window tripped.
  int backoff_holds = 0;           ///< Admission-gate holds applied.
  int faults_during_recovery = 0;  ///< Nested faults while recovery ran.
};

/// One entry in the supervisor's decision log; tests assert on the order of
/// escalation events rather than scraping log output.
struct Event {
  kernel::VirtualTime at;
  kernel::CompId comp;
  Level level;       ///< The component's level when the event fired.
  std::string what;  ///< "fault", "trip", "micro-reboot", "group-reboot",
                     ///< "quarantine", "readmit", "nested-fault", "hold".
  /// For "hold" events: the virtual time the admission gate reopens (the
  /// fleet campaign measures readmission lockstep across replicas from it).
  kernel::VirtualTime hold_until = 0;
};

/// The recovery supervisor (system-level fault-tolerance policy). It sits
/// between the kernel's fault vector and the booter: every fail-stop fault is
/// delivered to on_fault(), which keeps a sliding-window fault history per
/// component, detects crash loops, applies exponential re-admission backoff,
/// and escalates micro-reboot -> group reboot -> quarantine. The raw reboot
/// mechanism stays in the kernel/booter (perform_micro_reboot); the
/// supervisor only decides *what* to reboot and *when* to let clients back
/// in.
///
/// Faults that arrive while a recovery is already in progress (a replayed
/// invocation crashing the freshly rebooted server, or a group member
/// faulting during its own reboot) are handled re-entrantly: the nested
/// fault is charged to the component's history and cleared with a plain
/// micro-reboot immediately, but escalation decisions are deferred to the
/// next top-level fault so the outer recovery can finish unwinding first.
class Supervisor {
 public:
  Supervisor(kernel::Kernel& kernel, Policy policy);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Declares a D0/D1 dependency edge: `dependent` invokes (and caches state
  /// derived from) `on`. Group reboots of `on` walk these edges transitively.
  void add_dependency(kernel::CompId dependent, kernel::CompId on);

  /// The kernel's fault vector. Re-entrant-safe (see class comment).
  void on_fault(kernel::CompId comp);

  /// Manually readmits a quarantined component: resets its fault history and
  /// escalation level, lifts the kernel quarantine, and micro-reboots it so
  /// it restarts from the pristine image with a fresh fault epoch.
  void readmit(kernel::CompId comp);

  Level level_of(kernel::CompId comp) const;
  int trips_of(kernel::CompId comp) const;
  /// Reboot timestamps currently inside the sliding window for `comp`.
  int history_of(kernel::CompId comp) const;

  const Policy& policy() const { return policy_; }
  const Stats& stats() const { return stats_; }
  const std::vector<Event>& events() const { return events_; }

  /// Transitive dependents of `comp` (components whose state derives from
  /// it), in BFS order from the direct dependents outward.
  std::vector<kernel::CompId> dependents_of(kernel::CompId comp) const;

  /// Human-readable per-component summary table (level, trips, holds).
  std::string format_report() const;

 private:
  struct Track {
    std::deque<kernel::VirtualTime> history;  ///< Reboots inside the window.
    Level level = Level::kMicroReboot;
    int trips_at_level = 0;
    int total_trips = 0;
  };

  void prune_window(Track& track, kernel::VirtualTime now);
  /// Appends to the decision log; requires mtx_ held.
  void note_locked(kernel::CompId comp, Level level, const char* what, kernel::VirtualTime at,
                   kernel::VirtualTime hold_until = 0);
  kernel::VirtualTime backoff_for(int trip) const;
  /// backoff_for plus the deterministic seeded jitter for (comp, trip).
  kernel::VirtualTime jittered_backoff(kernel::CompId comp, int trip) const;
  void reboot_at_level(kernel::CompId comp, Track& track);

  kernel::Kernel& kernel_;
  Policy policy_;
  Stats stats_;
  std::unordered_map<kernel::CompId, Track> tracks_;
  /// dependency edges: server -> components that depend on it.
  std::unordered_map<kernel::CompId, std::vector<kernel::CompId>> rdeps_;
  std::vector<Event> events_;
  /// Per-recovery-context re-entrancy depth, keyed by the kernel's
  /// recovery_owner_key (a single slot 0 at cores=1): >0 while a recovery
  /// initiated by that context's on_fault is running. Scoping the depth per
  /// domain means nested-fault handling in one recovery never mislabels a
  /// concurrent disjoint domain's top-level fault as nested.
  std::unordered_map<std::int64_t, int> depth_;
  /// Short-hold guard for tracks_/stats_/events_/depth_: concurrent
  /// recoveries of disjoint domains mutate them from different cores. Never
  /// held across a kernel reboot/quarantine/hold call.
  mutable std::mutex mtx_;
};

}  // namespace sg::supervisor
