#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "c3/ids.hpp"

namespace sg::c3 {

/// Runtime descriptor state machine SM = (I, S, σ, s0, sf) from §III-B.
///
/// States are *implicit*, as in the paper: the IDL declares which interface
/// function may follow which (`sm_transition(f, g)`), and the compiler infers
/// the state set. A state is an equivalence class of "descriptor after
/// executing f" situations; two functions whose outgoing transition sets are
/// identical land the descriptor in the same state (e.g., tread/twrite/tlseek
/// all leave a file "open at an offset").
///
/// The recovery walk (R0) is precomputed per state by BFS over non-blocking
/// edges: blocking functions are never replayed during recovery — a blocked
/// condition is re-established by the client's own redo of its in-flight
/// call, not by the walk (see DESIGN.md). Functions marked `sm_restore` are
/// replayed right after creation whenever the descriptor is live, restoring
/// tracked descriptor data (e.g., tlseek restores the file offset).
///
/// finalize() also *interns* the machine: every function and state name gets
/// a dense id, and σ, validity, and the recovery walks become flat
/// id-indexed tables. The string-keyed query API below is a compatibility
/// shim over those tables — hot paths (the stub engine, the compiled
/// InterfaceSpec runtime) use the id API exclusively.
class DescStateMachine {
 public:
  /// Well-known state names.
  static constexpr const char* kInitial = "s0";   ///< Fresh descriptor (§III-B s_0).
  static constexpr const char* kFaulty = "sf";    ///< After server fault (s_f).
  static constexpr const char* kClosed = "closed";

  /// Declares that `to_fn` may legally follow `from_fn` on a descriptor.
  void add_transition(const std::string& from_fn, const std::string& to_fn);

  void set_creation(const std::string& fn);
  void set_terminal(const std::string& fn);
  void set_block(const std::string& fn);
  void set_wakeup(const std::string& fn);
  void set_restore(const std::string& fn);
  /// Marks a fn whose completion *consumes* a one-shot condition (e.g.
  /// evt_wait consumes a trigger). Consuming edges are never replayed in
  /// recovery walks; a state entered only by consuming fns recovers to s0.
  void set_consume(const std::string& fn);

  const std::set<std::string>& creation_fns() const { return creation_; }
  const std::set<std::string>& terminal_fns() const { return terminal_; }
  const std::set<std::string>& block_fns() const { return block_; }
  const std::set<std::string>& wakeup_fns() const { return wakeup_; }
  const std::vector<std::string>& restore_fns() const { return restore_; }
  const std::set<std::string>& consume_fns() const { return consume_; }

  bool is_creation(const std::string& fn) const { return creation_.count(fn) != 0; }
  bool is_terminal(const std::string& fn) const { return terminal_.count(fn) != 0; }
  bool is_block(const std::string& fn) const { return block_.count(fn) != 0; }
  bool is_wakeup(const std::string& fn) const { return wakeup_.count(fn) != 0; }
  bool is_consume(const std::string& fn) const { return consume_.count(fn) != 0; }

  /// Infers the state set, merges equivalent states, precomputes the
  /// shortest recovery walks, and interns everything into dense id-indexed
  /// tables. Must be called once before query methods; throws
  /// sg::AssertionError on an inconsistent machine (e.g., a terminal
  /// function that is also a creation function).
  void finalize();
  bool finalized() const { return finalized_; }

  // --- interned id API (hot path) ------------------------------------------
  // Fn ids are assigned in sorted-name order over every function the machine
  // mentions; state ids put s0 first (kStateInitial == 0), the remaining
  // live states in sorted order, and the closed pseudo-state last. Both
  // assignments are deterministic, so identical machines built from any spec
  // source (hand-written, sgidlc-generated, IDL-parsed) intern identically.

  FnId fn_id(const std::string& fn) const;  ///< kNoFn when unknown.
  const std::string& fn_name(FnId id) const;
  std::size_t fn_count() const { require_finalized(); return fn_names_.size(); }
  std::uint8_t fn_flags(FnId id) const;

  StateId state_id(const std::string& state) const;  ///< kNoState when unknown.
  const std::string& state_name(StateId id) const;
  StateId closed_state() const { require_finalized(); return closed_state_; }
  /// Number of live states (excluding sf/closed) — the |S| of Eq. (2).
  std::size_t live_state_count() const;

  /// Fault-detection half in id space: σ-validity of `fn` out of `state`.
  bool valid(StateId state, FnId fn) const;
  /// σ(·, fn): the state a descriptor enters when `fn` completes (the
  /// machine's states are "after f" classes, so σ depends only on the fn).
  /// closed_state() for terminal fns.
  StateId next_state_id(FnId fn) const;
  /// Precomputed R0 walk from s0 to `state`, as interface fn ids.
  const std::vector<FnId>& recovery_walk_ids(StateId state) const;
  /// Where recovery_walk_ids(state) actually lands.
  StateId reached_state_id(StateId state) const;
  const std::vector<FnId>& restore_fn_ids() const { require_finalized(); return restore_ids_; }

  // --- string compatibility API (cold path: tests, codegen, diagnostics) ---

  /// σ(state, fn): the state a descriptor enters when `fn` completes on it.
  /// Returns kClosed for terminal fns. Precondition: valid(state, fn).
  std::string next_state(const std::string& state, const std::string& fn) const;

  /// Fault-detection half of the model (§III-B motivation #1): is `fn` a
  /// legal transition out of `state`? Creation fns are only valid "before"
  /// a descriptor exists and are checked separately.
  bool valid(const std::string& state, const std::string& fn) const;

  /// State a freshly created descriptor is in after `create_fn` returns.
  std::string state_after_creation(const std::string& create_fn) const;

  /// The precomputed R0 walk: the (possibly empty) sequence of non-blocking
  /// interface functions that transits a *recreated* descriptor (already
  /// re-created via its creation fn and sm_restore fns) from s0 to `state`.
  /// If `state` is only reachable through a blocking edge, the walk stops at
  /// the last reachable state before the block; reached_state() tells where
  /// the walk lands.
  const std::vector<std::string>& recovery_walk(const std::string& state) const;

  /// Where recovery_walk(state) actually lands (== state unless the full
  /// path requires a blocking function).
  const std::string& reached_state(const std::string& state) const;

  /// All inferred states (after merging), excluding sf/closed, sorted.
  std::vector<std::string> states() const;

  /// The merged state name that executing `fn` leads to.
  const std::string& state_of_fn(const std::string& fn) const;

  /// Number of states (excluding sf/closed) — the |S| of Eq. (2).
  std::size_t state_count() const { return live_state_count(); }

 private:
  void require_finalized() const;
  FnId require_fn(const std::string& fn) const;

  // Build inputs (retained for the *_fns() accessors and codegen).
  std::set<std::string> creation_;
  std::set<std::string> terminal_;
  std::set<std::string> block_;
  std::set<std::string> wakeup_;
  std::set<std::string> consume_;
  std::vector<std::string> restore_;
  std::vector<std::pair<std::string, std::string>> transitions_;

  bool finalized_ = false;

  // Interned tables, built by finalize(). All queries are served from these.
  std::vector<std::string> fn_names_;          ///< FnId -> name (sorted assignment).
  std::map<std::string, FnId> fn_ids_;         ///< name -> FnId.
  std::vector<std::uint8_t> fn_flags_;         ///< FnId -> FnFlags bits.
  std::vector<StateId> fn_state_;              ///< FnId -> σ target ("after fn" class).
  std::vector<std::string> state_names_;       ///< StateId -> name; s0 first, closed last.
  std::map<std::string, StateId> state_ids_;   ///< name -> StateId.
  StateId closed_state_ = kNoState;
  std::vector<std::uint8_t> valid_;            ///< live_states × fns validity matrix.
  std::vector<std::vector<FnId>> walk_ids_;    ///< Per live state: R0 walk as fn ids.
  std::vector<StateId> walk_lands_;            ///< Per live state: where the walk lands.
  std::vector<std::vector<std::string>> walk_names_;  ///< String shim of walk_ids_.
  std::vector<FnId> restore_ids_;
};

}  // namespace sg::c3
