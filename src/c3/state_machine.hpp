#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace sg::c3 {

/// Runtime descriptor state machine SM = (I, S, σ, s0, sf) from §III-B.
///
/// States are *implicit*, as in the paper: the IDL declares which interface
/// function may follow which (`sm_transition(f, g)`), and the compiler infers
/// the state set. A state is an equivalence class of "descriptor after
/// executing f" situations; two functions whose outgoing transition sets are
/// identical land the descriptor in the same state (e.g., tread/twrite/tlseek
/// all leave a file "open at an offset").
///
/// The recovery walk (R0) is precomputed per state by BFS over non-blocking
/// edges: blocking functions are never replayed during recovery — a blocked
/// condition is re-established by the client's own redo of its in-flight
/// call, not by the walk (see DESIGN.md). Functions marked `sm_restore` are
/// replayed right after creation whenever the descriptor is live, restoring
/// tracked descriptor data (e.g., tlseek restores the file offset).
class DescStateMachine {
 public:
  /// Well-known state names.
  static constexpr const char* kInitial = "s0";   ///< Fresh descriptor (§III-B s_0).
  static constexpr const char* kFaulty = "sf";    ///< After server fault (s_f).
  static constexpr const char* kClosed = "closed";

  /// Declares that `to_fn` may legally follow `from_fn` on a descriptor.
  void add_transition(const std::string& from_fn, const std::string& to_fn);

  void set_creation(const std::string& fn);
  void set_terminal(const std::string& fn);
  void set_block(const std::string& fn);
  void set_wakeup(const std::string& fn);
  void set_restore(const std::string& fn);
  /// Marks a fn whose completion *consumes* a one-shot condition (e.g.
  /// evt_wait consumes a trigger). Consuming edges are never replayed in
  /// recovery walks; a state entered only by consuming fns recovers to s0.
  void set_consume(const std::string& fn);

  const std::set<std::string>& creation_fns() const { return creation_; }
  const std::set<std::string>& terminal_fns() const { return terminal_; }
  const std::set<std::string>& block_fns() const { return block_; }
  const std::set<std::string>& wakeup_fns() const { return wakeup_; }
  const std::vector<std::string>& restore_fns() const { return restore_; }
  const std::set<std::string>& consume_fns() const { return consume_; }

  bool is_creation(const std::string& fn) const { return creation_.count(fn) != 0; }
  bool is_terminal(const std::string& fn) const { return terminal_.count(fn) != 0; }
  bool is_block(const std::string& fn) const { return block_.count(fn) != 0; }
  bool is_wakeup(const std::string& fn) const { return wakeup_.count(fn) != 0; }
  bool is_consume(const std::string& fn) const { return consume_.count(fn) != 0; }

  /// Infers the state set, merges equivalent states, and precomputes the
  /// shortest recovery walks. Must be called once before query methods;
  /// throws sg::AssertionError on an inconsistent machine (e.g., a terminal
  /// function that is also a creation function).
  void finalize();
  bool finalized() const { return finalized_; }

  /// σ(state, fn): the state a descriptor enters when `fn` completes on it.
  /// Returns kClosed for terminal fns. Precondition: valid(state, fn).
  std::string next_state(const std::string& state, const std::string& fn) const;

  /// Fault-detection half of the model (§III-B motivation #1): is `fn` a
  /// legal transition out of `state`? Creation fns are only valid "before"
  /// a descriptor exists and are checked separately.
  bool valid(const std::string& state, const std::string& fn) const;

  /// State a freshly created descriptor is in after `create_fn` returns.
  std::string state_after_creation(const std::string& create_fn) const;

  /// The precomputed R0 walk: the (possibly empty) sequence of non-blocking
  /// interface functions that transits a *recreated* descriptor (already
  /// re-created via its creation fn and sm_restore fns) from s0 to `state`.
  /// If `state` is only reachable through a blocking edge, the walk stops at
  /// the last reachable state before the block; reached_state() tells where
  /// the walk lands.
  const std::vector<std::string>& recovery_walk(const std::string& state) const;

  /// Where recovery_walk(state) actually lands (== state unless the full
  /// path requires a blocking function).
  const std::string& reached_state(const std::string& state) const;

  /// All inferred states (after merging), excluding sf/closed.
  std::vector<std::string> states() const;

  /// The merged state name that executing `fn` leads to.
  const std::string& state_of_fn(const std::string& fn) const;

  /// Number of states (excluding sf/closed) — the |S| of Eq. (2).
  std::size_t state_count() const;

 private:
  void require_finalized() const;

  std::set<std::string> creation_;
  std::set<std::string> terminal_;
  std::set<std::string> block_;
  std::set<std::string> wakeup_;
  std::set<std::string> consume_;
  std::vector<std::string> restore_;
  std::vector<std::pair<std::string, std::string>> transitions_;

  bool finalized_ = false;
  /// fn -> merged state name the fn transitions a descriptor into.
  std::map<std::string, std::string> fn_to_state_;
  /// state -> (fn -> next state).
  std::map<std::string, std::map<std::string, std::string>> edges_;
  /// state -> recovery walk and the state it reaches.
  std::map<std::string, std::vector<std::string>> walks_;
  std::map<std::string, std::string> walk_lands_;
};

}  // namespace sg::c3
