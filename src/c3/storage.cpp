#include "c3/storage.hpp"

#include "kernel/fault.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace sg::c3 {

using kernel::Args;
using kernel::CallCtx;
using kernel::Value;

namespace {

/// FNV-1a over a stream of 64-bit words; the per-record checksum primitive.
std::uint64_t fnv_mix(std::uint64_t hash, std::uint64_t word) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (word >> (byte * 8)) & 0xff;
    hash *= 1099511628211ULL;
  }
  return hash;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;

}  // namespace

StorageComponent::StorageComponent(kernel::Kernel& kernel, CbufManager& cbufs)
    : Component(kernel, "storage", /*image_bytes=*/64 * 1024), cbufs_(cbufs) {
  // Kernel-mediated entry points used by server stubs during recovery, so
  // storage interactions are visible in invocation accounting. The namespace
  // travels as a hashed id to keep the ABI word-sized.
  export_fn("storage_desc_count", [this](CallCtx&, const Args& args) -> Value {
    SG_ASSERT(args.size() == 1);
    std::lock_guard<std::mutex> guard(mu_);
    for (const auto& space : spaces_) {
      if (hash_id(space.name) == args[0]) return static_cast<Value>(space.descs.size());
    }
    return 0;
  });
}

NsId StorageComponent::intern_ns(const std::string& ns) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = ns_ids_.find(ns);
  if (it != ns_ids_.end()) return it->second;
  const NsId id = static_cast<NsId>(spaces_.size());
  spaces_.push_back(Namespace{ns, {}, {}});
  ns_ids_.emplace(ns, id);
  return id;
}

NsId StorageComponent::find_ns(const std::string& ns) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = ns_ids_.find(ns);
  return it == ns_ids_.end() ? kNoNs : it->second;
}

StorageComponent::Namespace* StorageComponent::space(NsId ns) {
  if (ns < 0 || static_cast<std::size_t>(ns) >= spaces_.size()) return nullptr;
  return &spaces_[static_cast<std::size_t>(ns)];
}

const StorageComponent::Namespace* StorageComponent::space(NsId ns) const {
  if (ns < 0 || static_cast<std::size_t>(ns) >= spaces_.size()) return nullptr;
  return &spaces_[static_cast<std::size_t>(ns)];
}

// --- integrity ----------------------------------------------------------------

std::uint64_t StorageComponent::checksum_desc(NsId ns, Value id,
                                              const DescRecord& record) const {
  std::uint64_t sum = kFnvOffset;
  sum = fnv_mix(sum, static_cast<std::uint64_t>(ns));
  sum = fnv_mix(sum, static_cast<std::uint64_t>(id));
  sum = fnv_mix(sum, static_cast<std::uint64_t>(record.creator));
  sum = fnv_mix(sum, static_cast<std::uint64_t>(record.parent_desc));
  for (const auto& [key, value] : record.meta) {
    sum = fnv_mix(sum, static_cast<std::uint64_t>(hash_id(key)));
    sum = fnv_mix(sum, static_cast<std::uint64_t>(value));
  }
  return sum;
}

std::uint64_t StorageComponent::checksum_data(NsId ns, Value id, const DataSlice& slice) const {
  std::uint64_t sum = kFnvOffset;
  sum = fnv_mix(sum, static_cast<std::uint64_t>(ns) ^ 0x9e3779b97f4a7c15ULL);
  sum = fnv_mix(sum, static_cast<std::uint64_t>(id));
  sum = fnv_mix(sum, static_cast<std::uint64_t>(slice.offset));
  sum = fnv_mix(sum, static_cast<std::uint64_t>(slice.length));
  sum = fnv_mix(sum, static_cast<std::uint64_t>(slice.data));
  return sum;
}

void StorageComponent::announce_eviction(bool is_data, NsId ns, Value id) {
  kernel().trace(trace::EventKind::kStorageEvict, this->id(), is_data ? 1 : 0,
                 static_cast<std::int32_t>(ns), id);
  SG_DEBUG("storage", "checksum eviction of " << (is_data ? "data" : "desc") << " record "
                                              << id << " in ns " << ns);
  if (eviction_hook_) eviction_hook_(is_data, ns, id);
}

StorageComponent::ScrubReport StorageComponent::scrub() {
  maybe_fault();
  ScrubReport report;
  struct Evicted {
    bool is_data;
    NsId ns;
    Value id;
  };
  std::vector<Evicted> evicted;
  {
    std::lock_guard<std::mutex> guard(mu_);
    for (NsId ns = 0; static_cast<std::size_t>(ns) < spaces_.size(); ++ns) {
      Namespace& sp = spaces_[static_cast<std::size_t>(ns)];
      for (auto it = sp.descs.begin(); it != sp.descs.end();) {
        ++report.checked;
        if (it->second.sum != checksum_desc(ns, it->first, it->second.record)) {
          ++report.evicted_descs;
          ++stats_.desc_evictions;
          evicted.push_back({false, ns, it->first});
          it = sp.descs.erase(it);
        } else {
          ++it;
        }
      }
      for (auto it = sp.data.begin(); it != sp.data.end();) {
        ++report.checked;
        if (it->second.sum != checksum_data(ns, it->first, it->second.slice)) {
          ++report.evicted_data;
          ++stats_.data_evictions;
          evicted.push_back({true, ns, it->first});
          it = sp.data.erase(it);
        } else {
          ++it;
        }
      }
    }
    ++stats_.scrubs;
  }
  for (const Evicted& e : evicted) announce_eviction(e.is_data, e.ns, e.id);
  kernel().trace(trace::EventKind::kStorageScrub, this->id(),
                 static_cast<std::int32_t>(report.checked),
                 static_cast<std::int32_t>(report.evicted()));
  return report;
}

bool StorageComponent::corrupt_desc(const std::string& ns, Value desc_id, Value xor_mask) {
  const NsId id = find_ns(ns);
  std::lock_guard<std::mutex> guard(mu_);
  Namespace* sp = space(id);
  if (sp == nullptr) return false;
  auto it = sp->descs.find(desc_id);
  if (it == sp->descs.end()) return false;
  it->second.record.parent_desc ^= xor_mask;  // Checksum deliberately stale.
  return true;
}

bool StorageComponent::corrupt_data(const std::string& ns, Value id, Value xor_mask) {
  const NsId nsid = find_ns(ns);
  std::lock_guard<std::mutex> guard(mu_);
  Namespace* sp = space(nsid);
  if (sp == nullptr) return false;
  auto it = sp->data.find(id);
  if (it == sp->data.end()) return false;
  it->second.slice.length ^= xor_mask;  // Checksum deliberately stale.
  return true;
}

// --- SWIFI --------------------------------------------------------------------

void StorageComponent::enable_fault_injection(kernel::FaultProfile profile, std::uint64_t seed) {
  fault_target_ = true;
  profile_ = profile;
  rng_.reseed(seed);
}

void StorageComponent::maybe_fault() {
  if (!fault_target_) return;
  kernel::Kernel& kern = kernel();
  const kernel::ThreadId thd = kern.current_thread();
  if (thd == kernel::kNoThread) return;  // Boot/root context: no pipeline.
  kernel::RegisterFile& regs = kern.thread_registers(thd);
  if (!regs.armed_for(this->id())) return;  // No flip aimed at storage.
  // A flip is armed against this component: model the handler's pipeline
  // occupancy exactly like the kernel-invoked services do, so the flip can
  // land "inside" storage (tick_op per micro-op).
  CallCtx ctx{kern, thd, kernel::kNoComp, this->id()};
  try {
    kernel::simulate_server_work(ctx, profile_, rng_);
  } catch (const kernel::ComponentFault& fault) {
    // Fail-stop: storage itself crashes. The fault cannot be thrown through
    // the caller (storage is reached by direct call from inside *another*
    // component's handler, which must not be charged for it) — vector it
    // directly: micro-reboot storage, run the coordinator's rebuild hooks,
    // then let the interrupted operation proceed against the fresh store
    // (at-least-once for writes; a miss, i.e. the degraded path, for reads).
    SG_DEBUG("storage", "SWIFI fault in storage: " << fault.what());
    kern.inject_crash(this->id());
  }
  // SystemCrash (stack segfault / hang / propagation) unwinds to the
  // campaign driver for whole-machine classification, as everywhere else.
}

// --- G0, id-based -------------------------------------------------------------

void StorageComponent::record_desc(NsId ns, Value desc_id, DescRecord record) {
  maybe_fault();
  const std::uint64_t sum = checksum_desc(ns, desc_id, record);
  std::lock_guard<std::mutex> guard(mu_);
  Namespace* sp = space(ns);
  SG_ASSERT_MSG(sp != nullptr, "record_desc on unknown namespace id");
  sp->descs[desc_id] = StoredDesc{std::move(record), sum};
}

void StorageComponent::erase_desc(NsId ns, Value desc_id) {
  maybe_fault();
  std::lock_guard<std::mutex> guard(mu_);
  if (Namespace* sp = space(ns)) sp->descs.erase(desc_id);
}

std::optional<StorageComponent::DescRecord> StorageComponent::lookup_desc(NsId ns,
                                                                          Value desc_id) {
  maybe_fault();
  bool evicted = false;
  std::optional<DescRecord> out;
  {
    std::lock_guard<std::mutex> guard(mu_);
    Namespace* sp = space(ns);
    if (sp == nullptr) return std::nullopt;
    auto it = sp->descs.find(desc_id);
    if (it == sp->descs.end()) return std::nullopt;
    if (it->second.sum != checksum_desc(ns, desc_id, it->second.record)) {
      // Silent corruption caught by the checksum: evict (fail-stop at record
      // granularity) and report a miss so the G0 path degrades to U0/R0.
      ++stats_.desc_evictions;
      sp->descs.erase(it);
      evicted = true;
    } else {
      out = it->second.record;
    }
  }
  if (evicted) announce_eviction(/*is_data=*/false, ns, desc_id);
  return out;
}

std::size_t StorageComponent::desc_count(NsId ns) const {
  std::lock_guard<std::mutex> guard(mu_);
  const Namespace* sp = space(ns);
  return sp == nullptr ? 0 : sp->descs.size();
}

// --- G0, string shim ----------------------------------------------------------

void StorageComponent::record_desc(const std::string& ns, Value desc_id, DescRecord record) {
  record_desc(intern_ns(ns), desc_id, std::move(record));
}

void StorageComponent::erase_desc(const std::string& ns, Value desc_id) {
  erase_desc(find_ns(ns), desc_id);
}

std::optional<StorageComponent::DescRecord> StorageComponent::lookup_desc(const std::string& ns,
                                                                          Value desc_id) {
  return lookup_desc(find_ns(ns), desc_id);
}

std::size_t StorageComponent::desc_count(const std::string& ns) const {
  return desc_count(find_ns(ns));
}

// --- G1, id-based -------------------------------------------------------------

void StorageComponent::store_data(NsId ns, Value id, DataSlice slice) {
  maybe_fault();
  const std::uint64_t sum = checksum_data(ns, id, slice);
  std::lock_guard<std::mutex> guard(mu_);
  Namespace* sp = space(ns);
  SG_ASSERT_MSG(sp != nullptr, "store_data on unknown namespace id");
  sp->data[id] = StoredData{slice, sum};
}

std::optional<StorageComponent::DataSlice> StorageComponent::fetch_data(NsId ns, Value id) {
  maybe_fault();
  bool evicted = false;
  std::optional<DataSlice> out;
  {
    std::lock_guard<std::mutex> guard(mu_);
    Namespace* sp = space(ns);
    if (sp == nullptr) return std::nullopt;
    auto it = sp->data.find(id);
    if (it == sp->data.end()) return std::nullopt;
    if (it->second.sum != checksum_data(ns, id, it->second.slice)) {
      ++stats_.data_evictions;
      sp->data.erase(it);
      evicted = true;
    } else {
      out = it->second.slice;
    }
  }
  if (evicted) {
    announce_eviction(/*is_data=*/true, ns, id);
    return std::nullopt;
  }
  kernel().trace(trace::EventKind::kMechanism, this->id(),
                 static_cast<std::int32_t>(trace::Mechanism::kG1), 0, id);
  return out;
}

void StorageComponent::erase_data(NsId ns, Value id) {
  maybe_fault();
  std::lock_guard<std::mutex> guard(mu_);
  if (Namespace* sp = space(ns)) sp->data.erase(id);
}

std::size_t StorageComponent::data_count(NsId ns) const {
  std::lock_guard<std::mutex> guard(mu_);
  const Namespace* sp = space(ns);
  return sp == nullptr ? 0 : sp->data.size();
}

// --- G1, string shim ----------------------------------------------------------

void StorageComponent::store_data(const std::string& ns, Value id, DataSlice slice) {
  store_data(intern_ns(ns), id, slice);
}

std::optional<StorageComponent::DataSlice> StorageComponent::fetch_data(const std::string& ns,
                                                                        Value id) {
  return fetch_data(find_ns(ns), id);
}

void StorageComponent::erase_data(const std::string& ns, Value id) {
  erase_data(find_ns(ns), id);
}

std::size_t StorageComponent::data_count(const std::string& ns) const {
  return data_count(find_ns(ns));
}

Value StorageComponent::hash_id(const std::string& path) {
  // FNV-1a, truncated to a non-negative Value.
  std::uint64_t hash = kFnvOffset;
  for (const char c : path) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return static_cast<Value>(hash & 0x7fffffffffffffffULL);
}

void StorageComponent::reset_state() {
  // Drop contents but keep the interning: NsIds resolved before a storage
  // reset stay valid. Eviction stats survive too — they are diagnostics of
  // the substrate, not substrate state.
  std::lock_guard<std::mutex> guard(mu_);
  for (auto& space : spaces_) {
    space.descs.clear();
    space.data.clear();
  }
}

}  // namespace sg::c3
