#include "c3/storage.hpp"

#include "util/assert.hpp"

namespace sg::c3 {

using kernel::Args;
using kernel::CallCtx;
using kernel::Value;

StorageComponent::StorageComponent(kernel::Kernel& kernel, CbufManager& cbufs)
    : Component(kernel, "storage", /*image_bytes=*/64 * 1024), cbufs_(cbufs) {
  // Kernel-mediated entry points used by server stubs during recovery, so
  // storage interactions are visible in invocation accounting. The namespace
  // travels as a hashed id to keep the ABI word-sized.
  export_fn("storage_desc_count", [this](CallCtx&, const Args& args) -> Value {
    SG_ASSERT(args.size() == 1);
    for (const auto& space : spaces_) {
      if (hash_id(space.name) == args[0]) return static_cast<Value>(space.descs.size());
    }
    return 0;
  });
}

NsId StorageComponent::intern_ns(const std::string& ns) {
  auto it = ns_ids_.find(ns);
  if (it != ns_ids_.end()) return it->second;
  const NsId id = static_cast<NsId>(spaces_.size());
  spaces_.push_back(Namespace{ns, {}, {}});
  ns_ids_.emplace(ns, id);
  return id;
}

NsId StorageComponent::find_ns(const std::string& ns) const {
  auto it = ns_ids_.find(ns);
  return it == ns_ids_.end() ? kNoNs : it->second;
}

StorageComponent::Namespace* StorageComponent::space(NsId ns) {
  if (ns < 0 || static_cast<std::size_t>(ns) >= spaces_.size()) return nullptr;
  return &spaces_[static_cast<std::size_t>(ns)];
}

const StorageComponent::Namespace* StorageComponent::space(NsId ns) const {
  if (ns < 0 || static_cast<std::size_t>(ns) >= spaces_.size()) return nullptr;
  return &spaces_[static_cast<std::size_t>(ns)];
}

// --- G0, id-based -------------------------------------------------------------

void StorageComponent::record_desc(NsId ns, Value desc_id, DescRecord record) {
  Namespace* sp = space(ns);
  SG_ASSERT_MSG(sp != nullptr, "record_desc on unknown namespace id");
  sp->descs[desc_id] = std::move(record);
}

void StorageComponent::erase_desc(NsId ns, Value desc_id) {
  if (Namespace* sp = space(ns)) sp->descs.erase(desc_id);
}

std::optional<StorageComponent::DescRecord> StorageComponent::lookup_desc(NsId ns,
                                                                          Value desc_id) const {
  const Namespace* sp = space(ns);
  if (sp == nullptr) return std::nullopt;
  auto it = sp->descs.find(desc_id);
  if (it == sp->descs.end()) return std::nullopt;
  return it->second;
}

std::size_t StorageComponent::desc_count(NsId ns) const {
  const Namespace* sp = space(ns);
  return sp == nullptr ? 0 : sp->descs.size();
}

// --- G0, string shim ----------------------------------------------------------

void StorageComponent::record_desc(const std::string& ns, Value desc_id, DescRecord record) {
  record_desc(intern_ns(ns), desc_id, std::move(record));
}

void StorageComponent::erase_desc(const std::string& ns, Value desc_id) {
  erase_desc(find_ns(ns), desc_id);
}

std::optional<StorageComponent::DescRecord> StorageComponent::lookup_desc(const std::string& ns,
                                                                          Value desc_id) const {
  return lookup_desc(find_ns(ns), desc_id);
}

std::size_t StorageComponent::desc_count(const std::string& ns) const {
  return desc_count(find_ns(ns));
}

// --- G1, id-based -------------------------------------------------------------

void StorageComponent::store_data(NsId ns, Value id, DataSlice slice) {
  Namespace* sp = space(ns);
  SG_ASSERT_MSG(sp != nullptr, "store_data on unknown namespace id");
  sp->data[id] = slice;
}

std::optional<StorageComponent::DataSlice> StorageComponent::fetch_data(NsId ns, Value id) const {
  const Namespace* sp = space(ns);
  if (sp == nullptr) return std::nullopt;
  auto it = sp->data.find(id);
  if (it == sp->data.end()) return std::nullopt;
  kernel().trace(trace::EventKind::kMechanism, this->id(),
                 static_cast<std::int32_t>(trace::Mechanism::kG1), 0, id);
  return it->second;
}

void StorageComponent::erase_data(NsId ns, Value id) {
  if (Namespace* sp = space(ns)) sp->data.erase(id);
}

std::size_t StorageComponent::data_count(NsId ns) const {
  const Namespace* sp = space(ns);
  return sp == nullptr ? 0 : sp->data.size();
}

// --- G1, string shim ----------------------------------------------------------

void StorageComponent::store_data(const std::string& ns, Value id, DataSlice slice) {
  store_data(intern_ns(ns), id, slice);
}

std::optional<StorageComponent::DataSlice> StorageComponent::fetch_data(const std::string& ns,
                                                                        Value id) const {
  return fetch_data(find_ns(ns), id);
}

void StorageComponent::erase_data(const std::string& ns, Value id) {
  erase_data(find_ns(ns), id);
}

std::size_t StorageComponent::data_count(const std::string& ns) const {
  return data_count(find_ns(ns));
}

Value StorageComponent::hash_id(const std::string& path) {
  // FNV-1a, truncated to a non-negative Value.
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : path) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return static_cast<Value>(hash & 0x7fffffffffffffffULL);
}

void StorageComponent::reset_state() {
  // Drop contents but keep the interning: NsIds resolved before a storage
  // reset stay valid.
  for (auto& space : spaces_) {
    space.descs.clear();
    space.data.clear();
  }
}

}  // namespace sg::c3
