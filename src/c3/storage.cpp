#include "c3/storage.hpp"

#include "util/assert.hpp"

namespace sg::c3 {

using kernel::Args;
using kernel::CallCtx;
using kernel::Value;

StorageComponent::StorageComponent(kernel::Kernel& kernel, CbufManager& cbufs)
    : Component(kernel, "storage", /*image_bytes=*/64 * 1024), cbufs_(cbufs) {
  // Kernel-mediated entry points used by server stubs during recovery, so
  // storage interactions are visible in invocation accounting. The namespace
  // travels as a hashed id to keep the ABI word-sized.
  export_fn("storage_desc_count", [this](CallCtx&, const Args& args) -> Value {
    SG_ASSERT(args.size() == 1);
    for (const auto& [ns, descs] : descs_) {
      if (hash_id(ns) == args[0]) return static_cast<Value>(descs.size());
    }
    return 0;
  });
}

void StorageComponent::record_desc(const std::string& ns, Value desc_id, DescRecord record) {
  descs_[ns][desc_id] = std::move(record);
}

void StorageComponent::erase_desc(const std::string& ns, Value desc_id) {
  auto it = descs_.find(ns);
  if (it != descs_.end()) it->second.erase(desc_id);
}

std::optional<StorageComponent::DescRecord> StorageComponent::lookup_desc(const std::string& ns,
                                                                          Value desc_id) const {
  auto ns_it = descs_.find(ns);
  if (ns_it == descs_.end()) return std::nullopt;
  auto it = ns_it->second.find(desc_id);
  if (it == ns_it->second.end()) return std::nullopt;
  return it->second;
}

std::size_t StorageComponent::desc_count(const std::string& ns) const {
  auto it = descs_.find(ns);
  return it == descs_.end() ? 0 : it->second.size();
}

void StorageComponent::store_data(const std::string& ns, Value id, DataSlice slice) {
  data_[ns][id] = slice;
}

std::optional<StorageComponent::DataSlice> StorageComponent::fetch_data(const std::string& ns,
                                                                        Value id) const {
  auto ns_it = data_.find(ns);
  if (ns_it == data_.end()) return std::nullopt;
  auto it = ns_it->second.find(id);
  if (it == ns_it->second.end()) return std::nullopt;
  return it->second;
}

void StorageComponent::erase_data(const std::string& ns, Value id) {
  auto it = data_.find(ns);
  if (it != data_.end()) it->second.erase(id);
}

std::size_t StorageComponent::data_count(const std::string& ns) const {
  auto it = data_.find(ns);
  return it == data_.end() ? 0 : it->second.size();
}

Value StorageComponent::hash_id(const std::string& path) {
  // FNV-1a, truncated to a non-negative Value.
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : path) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return static_cast<Value>(hash & 0x7fffffffffffffffULL);
}

void StorageComponent::reset_state() {
  descs_.clear();
  data_.clear();
}

}  // namespace sg::c3
