#pragma once

#include <optional>
#include <string>
#include <vector>

#include "c3/mechanism.hpp"
#include "c3/state_machine.hpp"

namespace sg::c3 {

/// How a parameter participates in descriptor tracking (Table I, bottom).
enum class ParamRole {
  kPlain,       ///< Not tracked; replay uses the live argument only.
  kDesc,        ///< `desc(id)` — looks up the descriptor; rewritten on replay.
  kParentDesc,  ///< `parent_desc(id)` — tracked as the parent link (P_dr).
  kDescData,    ///< `desc_data(type name)` — tracked into D_{d_r}.
  kClientId,    ///< `componentid_t` — auto-filled with the invoking component.
};

const char* to_string(ParamRole role);

struct ParamSpec {
  std::string type;
  std::string name;
  ParamRole role = ParamRole::kPlain;
};

/// One interface function f_i ∈ I_{d_r}, with its tracking annotations.
struct FnSpec {
  std::string name;
  std::string ret_type = "int";

  /// `desc_data_retval(type, name)` on a creation fn: the return value is the
  /// new descriptor id, tracked under `ret_data_name`.
  bool ret_is_desc = false;
  std::string ret_data_name;

  /// `desc_data_retadd(name)`: a successful (>=0) return value is *added* to
  /// tracked datum `name` (e.g., tread/twrite advance the file offset).
  std::optional<std::string> ret_adds_to;

  std::vector<ParamSpec> params;

  /// Index of the kDesc param, or -1 (creation fns have none).
  int desc_param() const;
  /// Index of the kParentDesc param, or -1.
  int parent_param() const;
};

/// P_{d_r}: inter-descriptor dependency shape.
enum class ParentKind { kSolo, kParent, kXCParent };

const char* to_string(ParentKind kind);

/// The full compiled interface description: the descriptor-resource model
/// DR = (B_r, D_r, G_dr, P_dr, C_dr, Y_dr, D_dr) plus the descriptor state
/// machine and function specs. Produced by the SuperGlue IDL compiler (or by
/// generated code), consumed by the stub engine and the recovery coordinator.
struct InterfaceSpec {
  std::string service;  ///< e.g. "evt", "lock", "mman".

  // --- descriptor-resource model flags (service_global_info block) ---------
  bool desc_block = false;           ///< B_r.
  bool resc_has_data = false;        ///< D_r ≠ ∅.
  bool desc_is_global = false;       ///< G_{d_r}.
  ParentKind parent = ParentKind::kSolo;  ///< P_{d_r}.
  bool desc_close_children = false;  ///< C_{d_r}.
  bool desc_close_remove = false;    ///< Y_{d_r}.
  bool desc_has_data = false;        ///< D_{d_r} ≠ ∅.

  std::vector<FnSpec> fns;
  DescStateMachine sm;

  const FnSpec* find_fn(const std::string& name) const;
  const FnSpec& fn(const std::string& name) const;

  /// The single creation fn used for replay (first sm_creation fn declared).
  const FnSpec& creation_fn() const;

  /// Which recovery mechanisms this interface requires (§III-C mapping):
  /// R0/T1 always; T0 iff B_r; D0 iff C_dr; D1 iff P_dr != Solo;
  /// G0 iff G_dr; G1 iff D_r; U0 iff G_dr or P_dr == XCParent.
  MechanismSet mechanisms() const;

  /// Model-consistency validation (throws sg::AssertionError):
  ///  - Y_dr == (P_dr != Solo && !C_dr)            [§III-A]
  ///  - I_block ≠ ∅  <->  B_r                      [§III-B]
  ///  - every non-plain annotation is consistent (<=1 desc param, parent
  ///    param only when P_dr != Solo, desc_data only when D_dr, ...)
  ///  - replayability: every param of every creation/walk/restore fn is
  ///    derivable at recovery time (desc, parent, tracked data, client id).
  void validate() const;
};

}  // namespace sg::c3
