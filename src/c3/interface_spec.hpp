#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "c3/ids.hpp"
#include "c3/mechanism.hpp"
#include "c3/state_machine.hpp"

namespace sg::c3 {

/// How a parameter participates in descriptor tracking (Table I, bottom).
enum class ParamRole {
  kPlain,       ///< Not tracked; replay uses the live argument only.
  kDesc,        ///< `desc(id)` — looks up the descriptor; rewritten on replay.
  kParentDesc,  ///< `parent_desc(id)` — tracked as the parent link (P_dr).
  kDescData,    ///< `desc_data(type name)` — tracked into D_{d_r}.
  kClientId,    ///< `componentid_t` — auto-filled with the invoking component.
};

const char* to_string(ParamRole role);

struct ParamSpec {
  std::string type;
  std::string name;
  ParamRole role = ParamRole::kPlain;
};

/// One interface function f_i ∈ I_{d_r}, with its tracking annotations.
struct FnSpec {
  std::string name;
  std::string ret_type = "int";

  /// `desc_data_retval(type, name)` on a creation fn: the return value is the
  /// new descriptor id, tracked under `ret_data_name`.
  bool ret_is_desc = false;
  std::string ret_data_name;

  /// `desc_data_retadd(name)`: a successful (>=0) return value is *added* to
  /// tracked datum `name` (e.g., tread/twrite advance the file offset).
  std::optional<std::string> ret_adds_to;

  std::vector<ParamSpec> params;

  /// Index of the kDesc param, or -1 (creation fns have none).
  int desc_param() const;
  /// Index of the kParentDesc param, or -1.
  int parent_param() const;
};

/// P_{d_r}: inter-descriptor dependency shape.
enum class ParentKind { kSolo, kParent, kXCParent };

const char* to_string(ParentKind kind);

/// Per-function record of the compiled runtime: everything the stub engine
/// needs on the hot path, pre-resolved into dense ids and indexes so one
/// invocation costs array loads instead of string map lookups.
struct CompiledFn {
  const FnSpec* decl = nullptr;
  std::uint8_t flags = 0;              ///< FnFlags bits from the state machine.
  int desc_idx = -1;                   ///< Index of the kDesc param, or -1.
  int parent_idx = -1;                 ///< Index of the kParentDesc param, or -1.
  StateId next_state = kNoState;       ///< σ target after successful completion.
  FieldId ret_field = kNoField;        ///< desc_data_retval tracking field.
  FieldId ret_add_field = kNoField;    ///< desc_data_retadd accumulation field.
  std::vector<FieldId> param_fields;   ///< Per param: D_{d_r} field, kNoField if untracked.

  bool is_creation() const { return (flags & FnFlags::kCreation) != 0; }
  bool is_terminal() const { return (flags & FnFlags::kTerminal) != 0; }
  bool is_block() const { return (flags & FnFlags::kBlock) != 0; }
};

/// The interned, flat-table form of an InterfaceSpec, built once (lazily) per
/// spec. Fn ids are the *declaration order* of `InterfaceSpec::fns` — stable
/// for a given spec source and the id space the generated stubs and typed
/// clients compile against. Field ids are assigned in first-declaration
/// order across the fns. State ids are shared with the spec's
/// DescStateMachine (s0 == kStateInitial == 0).
class CompiledRuntime {
 public:
  FnId fn_id(const std::string& name) const {
    auto it = fn_ids_.find(name);
    return it == fn_ids_.end() ? kNoFn : it->second;
  }
  const CompiledFn& fn(FnId id) const { return fns_[static_cast<std::size_t>(id)]; }
  std::size_t fn_count() const { return fns_.size(); }

  FieldId field_id(const std::string& name) const {
    auto it = field_ids_.find(name);
    return it == field_ids_.end() ? kNoField : it->second;
  }
  const std::string& field_name(FieldId id) const {
    return field_names_[static_cast<std::size_t>(id)];
  }
  std::size_t field_count() const { return field_names_.size(); }

  /// σ-validity of `fn` out of `state`, over the dense matrix.
  bool valid(StateId state, FnId fn) const {
    if (state < 0 || state >= static_cast<StateId>(live_states_) || fn < 0) return false;
    return valid_[static_cast<std::size_t>(state) * fns_.size() +
                  static_cast<std::size_t>(fn)] != 0;
  }

  /// The R0 walk for `state`, as declaration-order fn ids.
  const std::vector<FnId>& recovery_walk(StateId state) const {
    return walks_[static_cast<std::size_t>(state)];
  }
  StateId walk_land(StateId state) const { return walk_lands_[static_cast<std::size_t>(state)]; }
  const std::vector<FnId>& restore_fns() const { return restore_; }
  FnId creation_fn() const { return creation_; }
  std::size_t live_state_count() const { return live_states_; }
  StateId closed_state() const { return closed_state_; }

 private:
  friend struct InterfaceSpec;

  std::vector<CompiledFn> fns_;
  std::unordered_map<std::string, FnId> fn_ids_;
  std::vector<std::string> field_names_;
  std::unordered_map<std::string, FieldId> field_ids_;
  std::vector<std::uint8_t> valid_;  ///< live_states × fns.
  std::vector<std::vector<FnId>> walks_;
  std::vector<StateId> walk_lands_;
  std::vector<FnId> restore_;
  FnId creation_ = kNoFn;
  std::size_t live_states_ = 0;
  StateId closed_state_ = kNoState;
};

/// The full compiled interface description: the descriptor-resource model
/// DR = (B_r, D_r, G_dr, P_dr, C_dr, Y_dr, D_dr) plus the descriptor state
/// machine and function specs. Produced by the SuperGlue IDL compiler (or by
/// generated code), consumed by the stub engine and the recovery coordinator.
struct InterfaceSpec {
  std::string service;  ///< e.g. "evt", "lock", "mman".

  // --- descriptor-resource model flags (service_global_info block) ---------
  bool desc_block = false;           ///< B_r.
  bool resc_has_data = false;        ///< D_r ≠ ∅.
  bool desc_is_global = false;       ///< G_{d_r}.
  ParentKind parent = ParentKind::kSolo;  ///< P_{d_r}.
  bool desc_close_children = false;  ///< C_{d_r}.
  bool desc_close_remove = false;    ///< Y_{d_r}.
  bool desc_has_data = false;        ///< D_{d_r} ≠ ∅.

  std::vector<FnSpec> fns;
  DescStateMachine sm;

  InterfaceSpec() = default;
  // Copies/moves drop the compiled-runtime cache: it holds pointers into the
  // source spec's `fns` and is rebuilt on first use by the new owner.
  InterfaceSpec(const InterfaceSpec& other);
  InterfaceSpec& operator=(const InterfaceSpec& other);
  InterfaceSpec(InterfaceSpec&& other) noexcept;
  InterfaceSpec& operator=(InterfaceSpec&& other) noexcept;

  const FnSpec* find_fn(const std::string& name) const;
  const FnSpec& fn(const std::string& name) const;

  /// The single creation fn used for replay (first sm_creation fn declared).
  const FnSpec& creation_fn() const;

  /// The interned runtime, built on first use. The steady-state read is a
  /// single lock-free acquire-load (the invocation hot path at cores>1);
  /// only the one-time build takes a mutex, and a concurrent reader either
  /// sees the published table or briefly waits for the builder.
  const CompiledRuntime& compiled() const;
  /// Declaration-order fn id, kNoFn if unknown.
  FnId fn_id(const std::string& name) const { return compiled().fn_id(name); }
  /// Tracked-data field id, kNoField if unknown.
  FieldId field_id(const std::string& name) const { return compiled().field_id(name); }

  /// Which recovery mechanisms this interface requires (§III-C mapping):
  /// R0/T1 always; T0 iff B_r; D0 iff C_dr; D1 iff P_dr != Solo;
  /// G0 iff G_dr; G1 iff D_r; U0 iff G_dr or P_dr == XCParent.
  MechanismSet mechanisms() const;

  /// Model-consistency validation (throws sg::AssertionError):
  ///  - Y_dr == (P_dr != Solo && !C_dr)            [§III-A]
  ///  - I_block ≠ ∅  <->  B_r                      [§III-B]
  ///  - every non-plain annotation is consistent (<=1 desc param, parent
  ///    param only when P_dr != Solo, desc_data only when D_dr, ...)
  ///  - replayability: every param of every creation/walk/restore fn is
  ///    derivable at recovery time (desc, parent, tracked data, client id)
  ///  - D_dr fits the fixed per-descriptor field array (TrackedDesc).
  void validate() const;

 private:
  mutable std::unique_ptr<CompiledRuntime> compiled_;
  /// Lock-free fast-path view of compiled_ (release-published after build).
  mutable std::atomic<const CompiledRuntime*> compiled_pub_{nullptr};
  mutable std::mutex compile_mu_;  ///< Serializes the one-time build only.
};

}  // namespace sg::c3
