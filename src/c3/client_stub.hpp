#pragma once

#include <cstdint>
#include <string>

#include "c3/desc_track.hpp"
#include "c3/interface_spec.hpp"
#include "c3/invoker.hpp"
#include "c3/storage.hpp"
#include "kernel/component.hpp"
#include "kernel/kernel.hpp"

namespace sg::c3 {

/// Counters exposed for the micro-benchmarks (Fig 6) and tests.
struct StubStats {
  std::uint64_t calls = 0;
  std::uint64_t tracked_creates = 0;
  std::uint64_t transitions = 0;
  std::uint64_t redos = 0;            ///< Fig 4 `goto redo` executions.
  std::uint64_t recoveries = 0;       ///< Descriptors walked back from s_f.
  std::uint64_t walk_fns = 0;         ///< Interface fns replayed during walks.
  std::uint64_t invalid_transitions = 0;  ///< SM-based fault detections.
  std::uint64_t upcall_recreates = 0;     ///< U0 recreations served.
  std::uint64_t deferred_commits = 0;     ///< SM commits skipped: raced a peer's.
};

/// The generated/interpreted *client-side* interface stub: the dotted
/// rectangle of Fig 1(b). One instance lives in each client component per
/// server interface. It implements the Fig 4 invocation template —
///
///   redo:  desc bookkeeping -> invoke -> on fault: CSTUB_FAULT_UPDATE,
///          state-machine recovery, goto redo -> track results
///
/// — driven entirely by the InterfaceSpec the SuperGlue compiler produced,
/// in its compiled (interned-id) form: per-invocation work is array indexing
/// into the spec's flat tables, never string map lookups.
///
/// Recovery ABI: when replaying a creation fn, the stub appends the
/// descriptor's previous server id as one extra trailing argument (the "id
/// hint"); servers reuse it so global descriptor ids stay stable (G0).
class ClientStub final : public Invoker {
 public:
  ClientStub(kernel::Kernel& kernel, kernel::Component& client, kernel::CompId server,
             const InterfaceSpec& spec, StorageComponent* storage);

  ClientStub(const ClientStub&) = delete;
  ClientStub& operator=(const ClientStub&) = delete;

  /// Invokes `fn` through the fault-aware stub path (string compatibility
  /// entry: one interned-id lookup, then call_id).
  kernel::Value call(const std::string& fn, const kernel::Args& args) override;

  /// Interns into the spec's declaration-order fn id space.
  FnId resolve(const std::string& fn) override;

  /// The hot-path entry point: invokes by compiled fn id.
  kernel::Value call_id(FnId fn, const kernel::Args& args) override;

  /// CSTUB_FAULT_UPDATE: syncs the fault epoch; on change, transitions every
  /// tracked descriptor to s_f (recovered lazily, T1).
  void fault_update();

  /// Eager variant: recover every tracked descriptor right now (C3's eager
  /// mode; used for the eager-vs-on-demand ablation).
  void recover_all();

  /// U0 entry: recreate descriptor `vid` in the server (invoked via the
  /// `sg_recreate_<service>` upcall the ctor exports on the client).
  kernel::Value recreate_by_vid(kernel::Value vid);

  /// G0 rebuild path: after a fault in the *storage* component wiped its
  /// contents, re-record the creator entry for every live tracked descriptor
  /// from this stub's own state. Returns the number of records re-published.
  /// Zero-cost (and zero) for stubs that do not keep creator records.
  std::size_t republish_creators();

  const InterfaceSpec& spec() const { return spec_; }
  DescTable& table() { return table_; }
  const DescTable& table() const { return table_; }
  const StubStats& stats() const { return stats_; }
  kernel::CompId client_id() const { return client_.id(); }
  kernel::CompId server_id() const { return server_; }

  /// Name of the upcall exported on the client component for U0 recreation.
  static std::string recreate_fn_name(const std::string& service);

  /// Fault-regression knobs for the schedule explorer (tests only): each flag
  /// re-opens one historical race window so `explore::Explorer` can prove it
  /// rediscovers the bug from scratch. Process-global; never set in production
  /// code. See tests/explore_test.cpp.
  struct TestKnobs {
    /// PR 1 regression: skip the per-descriptor in-flight-recovery wait, so a
    /// second thread can race past a peer's half-done recovery walk.
    bool disable_walk_guard = false;
    /// PR 4 regression: drop the `last_epoch_` term from the EINVAL redo
    /// check, re-opening the fault-after-walk-before-retry window.
    bool disable_epoch_redo_check = false;
  };
  static TestKnobs test_knobs;

 private:
  /// Recovers `desc` (and, D1, its parents) if it is in s_f. Bounded retries;
  /// escalates to SystemCrash(kDoubleFault) if recovery itself keeps faulting.
  void ensure_recovered(TrackedDesc& desc, int depth = 0);

  /// One recovery attempt: creation replay (+ id hint), sm_restore fns, then
  /// the precomputed R0 walk. Throws RecoveryFaulted (internal) on fault.
  void recover_once(TrackedDesc& desc, int depth);

  /// D0: before a terminal fn on a subtree root, rebuild all (faulty)
  /// descendants so the server-side revocation has its side effects.
  void recover_subtree(TrackedDesc& desc);

  /// Builds the argument vector for replaying `fn` on `desc` from tracked
  /// state (desc/parent ids, D_dr data, client id).
  kernel::Args build_replay_args(const CompiledFn& fn, const TrackedDesc& desc);

  /// Direct invocation used by recovery paths (no re-entrant tracking).
  kernel::Value recovery_invoke(FnId fn, const kernel::Args& args);

  /// `pre_seq` is the descriptor's commit_seq sampled just before the
  /// invocation went on the wire (0 when no descriptor was tracked).
  void track_result(FnId fn_id, const CompiledFn& fn, const kernel::Args& args,
                    kernel::Value ret, std::uint64_t pre_seq);

  /// G0/U0 bookkeeping: (re)records this descriptor's creator in storage.
  void record_creator(const TrackedDesc& desc);

  kernel::Kernel& kernel_;
  kernel::Component& client_;
  kernel::CompId server_;
  const InterfaceSpec& spec_;
  const CompiledRuntime& rt_;  ///< spec_.compiled(), resolved once at ctor.
  StorageComponent* storage_;  ///< Required iff the spec uses G0/G1.
  NsId storage_ns_ = kNoNs;    ///< Interned storage namespace for the service.
  bool records_creators_ = false;  ///< G_dr or XCParent: keep creator records.
  DescTable table_;
  int last_epoch_ = 0;
  StubStats stats_;
};

}  // namespace sg::c3
