#include "c3/mechanism.hpp"

namespace sg::c3 {

const char* to_string(Mechanism mechanism) {
  switch (mechanism) {
    case Mechanism::kR0: return "R0";
    case Mechanism::kT0: return "T0";
    case Mechanism::kT1: return "T1";
    case Mechanism::kD0: return "D0";
    case Mechanism::kD1: return "D1";
    case Mechanism::kG0: return "G0";
    case Mechanism::kG1: return "G1";
    case Mechanism::kU0: return "U0";
  }
  return "?";
}

std::string to_string(const MechanismSet& mechanisms) {
  std::string out = "{";
  bool first = true;
  for (const Mechanism m : mechanisms) {
    if (!first) out += ",";
    out += to_string(m);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace sg::c3
