#include "c3/interface_spec.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sg::c3 {

const char* to_string(ParamRole role) {
  switch (role) {
    case ParamRole::kPlain: return "plain";
    case ParamRole::kDesc: return "desc";
    case ParamRole::kParentDesc: return "parent_desc";
    case ParamRole::kDescData: return "desc_data";
    case ParamRole::kClientId: return "client_id";
  }
  return "?";
}

const char* to_string(ParentKind kind) {
  switch (kind) {
    case ParentKind::kSolo: return "Solo";
    case ParentKind::kParent: return "Parent";
    case ParentKind::kXCParent: return "XCParent";
  }
  return "?";
}

int FnSpec::desc_param() const {
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].role == ParamRole::kDesc) return static_cast<int>(i);
  }
  return -1;
}

int FnSpec::parent_param() const {
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].role == ParamRole::kParentDesc) return static_cast<int>(i);
  }
  return -1;
}

const FnSpec* InterfaceSpec::find_fn(const std::string& name) const {
  for (const auto& fn_spec : fns) {
    if (fn_spec.name == name) return &fn_spec;
  }
  return nullptr;
}

const FnSpec& InterfaceSpec::fn(const std::string& name) const {
  const FnSpec* found = find_fn(name);
  SG_ASSERT_MSG(found != nullptr, service + ": unknown interface fn " + name);
  return *found;
}

const FnSpec& InterfaceSpec::creation_fn() const {
  SG_ASSERT_MSG(!sm.creation_fns().empty(), service + ": no creation fn");
  for (const auto& fn_spec : fns) {
    if (sm.is_creation(fn_spec.name)) return fn_spec;
  }
  SG_ASSERT_MSG(false, service + ": creation fn missing from fn list");
  __builtin_unreachable();
}

MechanismSet InterfaceSpec::mechanisms() const {
  MechanismSet set{Mechanism::kR0, Mechanism::kT1};
  if (desc_block) set.insert(Mechanism::kT0);
  if (desc_close_children) set.insert(Mechanism::kD0);
  if (parent != ParentKind::kSolo) set.insert(Mechanism::kD1);
  if (desc_is_global) set.insert(Mechanism::kG0);
  if (resc_has_data) set.insert(Mechanism::kG1);
  if (desc_is_global || parent == ParentKind::kXCParent) set.insert(Mechanism::kU0);
  return set;
}

void InterfaceSpec::validate() const {
  SG_ASSERT_MSG(!service.empty(), "interface spec without a service name");
  SG_ASSERT_MSG(sm.finalized(), service + ": state machine not finalized");

  // Y_dr ≡ P_dr != Solo ∧ ¬C_dr (§III-A).
  const bool expected_y = (parent != ParentKind::kSolo) && !desc_close_children;
  SG_ASSERT_MSG(desc_close_remove == expected_y,
                service + ": desc_close_remove must equal (P != Solo && !C), model rule Y_dr");

  // I_block ≠ ∅ <-> B_r (§III-B).
  SG_ASSERT_MSG(sm.block_fns().empty() == !desc_block,
                service + ": sm_block set must be non-empty iff desc_block");
  // Every blocking interface needs a wakeup counterpart for T0.
  if (desc_block) {
    SG_ASSERT_MSG(!sm.wakeup_fns().empty(), service + ": desc_block without sm_wakeup fn");
  }

  for (const auto& fn_spec : fns) {
    int desc_params = 0;
    int parent_params = 0;
    for (const auto& param : fn_spec.params) {
      if (param.role == ParamRole::kDesc) ++desc_params;
      if (param.role == ParamRole::kParentDesc) ++parent_params;
      if (param.role == ParamRole::kParentDesc) {
        SG_ASSERT_MSG(parent != ParentKind::kSolo,
                      service + "." + fn_spec.name + ": parent_desc param but P_dr == Solo");
      }
      if (param.role == ParamRole::kDescData) {
        SG_ASSERT_MSG(desc_has_data,
                      service + "." + fn_spec.name + ": desc_data param but !desc_has_data");
      }
    }
    SG_ASSERT_MSG(desc_params <= 1, service + "." + fn_spec.name + ": multiple desc params");
    SG_ASSERT_MSG(parent_params <= 1, service + "." + fn_spec.name + ": multiple parent params");

    const bool is_create = sm.is_creation(fn_spec.name);
    if (is_create) {
      SG_ASSERT_MSG(fn_spec.desc_param() == -1,
                    service + "." + fn_spec.name + ": creation fn cannot take a desc param");
      SG_ASSERT_MSG(fn_spec.ret_is_desc,
                    service + "." + fn_spec.name +
                        ": creation fn needs desc_data_retval to name the new descriptor");
    } else {
      // Non-creation fns must address a descriptor to be trackable.
      SG_ASSERT_MSG(fn_spec.desc_param() != -1,
                    service + "." + fn_spec.name + ": non-creation fn without desc param");
    }
  }

  // Replayability: every param of every fn the recovery can replay (the
  // creation fn, sm_restore fns, and every fn on some recovery walk) must be
  // derivable from tracked state at recovery time.
  auto check_replayable = [this](const FnSpec& fn_spec) {
    for (const auto& param : fn_spec.params) {
      const bool derivable = param.role != ParamRole::kPlain;
      SG_ASSERT_MSG(derivable, service + "." + fn_spec.name + ": param '" + param.name +
                                   "' is not derivable at recovery time (annotate it as desc, "
                                   "parent_desc, desc_data, or use componentid_t)");
    }
  };
  check_replayable(creation_fn());
  for (const auto& restore_name : sm.restore_fns()) check_replayable(fn(restore_name));
  for (const auto& state : sm.states()) {
    for (const auto& walk_fn : sm.recovery_walk(state)) check_replayable(fn(walk_fn));
  }
}

}  // namespace sg::c3
