#include "c3/interface_spec.hpp"

#include <algorithm>

#include "c3/desc_track.hpp"
#include "util/assert.hpp"

namespace sg::c3 {

const char* to_string(ParamRole role) {
  switch (role) {
    case ParamRole::kPlain: return "plain";
    case ParamRole::kDesc: return "desc";
    case ParamRole::kParentDesc: return "parent_desc";
    case ParamRole::kDescData: return "desc_data";
    case ParamRole::kClientId: return "client_id";
  }
  return "?";
}

const char* to_string(ParentKind kind) {
  switch (kind) {
    case ParentKind::kSolo: return "Solo";
    case ParentKind::kParent: return "Parent";
    case ParentKind::kXCParent: return "XCParent";
  }
  return "?";
}

int FnSpec::desc_param() const {
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].role == ParamRole::kDesc) return static_cast<int>(i);
  }
  return -1;
}

int FnSpec::parent_param() const {
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].role == ParamRole::kParentDesc) return static_cast<int>(i);
  }
  return -1;
}

InterfaceSpec::InterfaceSpec(const InterfaceSpec& other)
    : service(other.service),
      desc_block(other.desc_block),
      resc_has_data(other.resc_has_data),
      desc_is_global(other.desc_is_global),
      parent(other.parent),
      desc_close_children(other.desc_close_children),
      desc_close_remove(other.desc_close_remove),
      desc_has_data(other.desc_has_data),
      fns(other.fns),
      sm(other.sm) {}

InterfaceSpec& InterfaceSpec::operator=(const InterfaceSpec& other) {
  if (this == &other) return *this;
  service = other.service;
  desc_block = other.desc_block;
  resc_has_data = other.resc_has_data;
  desc_is_global = other.desc_is_global;
  parent = other.parent;
  desc_close_children = other.desc_close_children;
  desc_close_remove = other.desc_close_remove;
  desc_has_data = other.desc_has_data;
  fns = other.fns;
  sm = other.sm;
  compiled_pub_.store(nullptr, std::memory_order_relaxed);
  compiled_.reset();
  return *this;
}

InterfaceSpec::InterfaceSpec(InterfaceSpec&& other) noexcept
    : service(std::move(other.service)),
      desc_block(other.desc_block),
      resc_has_data(other.resc_has_data),
      desc_is_global(other.desc_is_global),
      parent(other.parent),
      desc_close_children(other.desc_close_children),
      desc_close_remove(other.desc_close_remove),
      desc_has_data(other.desc_has_data),
      fns(std::move(other.fns)),
      sm(std::move(other.sm)) {}

InterfaceSpec& InterfaceSpec::operator=(InterfaceSpec&& other) noexcept {
  if (this == &other) return *this;
  service = std::move(other.service);
  desc_block = other.desc_block;
  resc_has_data = other.resc_has_data;
  desc_is_global = other.desc_is_global;
  parent = other.parent;
  desc_close_children = other.desc_close_children;
  desc_close_remove = other.desc_close_remove;
  desc_has_data = other.desc_has_data;
  fns = std::move(other.fns);
  sm = std::move(other.sm);
  compiled_pub_.store(nullptr, std::memory_order_relaxed);
  compiled_.reset();
  return *this;
}

const FnSpec* InterfaceSpec::find_fn(const std::string& name) const {
  for (const auto& fn_spec : fns) {
    if (fn_spec.name == name) return &fn_spec;
  }
  return nullptr;
}

const FnSpec& InterfaceSpec::fn(const std::string& name) const {
  const FnSpec* found = find_fn(name);
  SG_ASSERT_MSG(found != nullptr, service + ": unknown interface fn " + name);
  return *found;
}

const FnSpec& InterfaceSpec::creation_fn() const {
  SG_ASSERT_MSG(!sm.creation_fns().empty(), service + ": no creation fn");
  for (const auto& fn_spec : fns) {
    if (sm.is_creation(fn_spec.name)) return fn_spec;
  }
  SG_ASSERT_MSG(false, service + ": creation fn missing from fn list");
  __builtin_unreachable();
}

const CompiledRuntime& InterfaceSpec::compiled() const {
  // Lock-free fast path: pairs with the release publish at the end of the
  // build, so a reader that sees the pointer sees the fully-built table.
  if (const CompiledRuntime* pub = compiled_pub_.load(std::memory_order_acquire)) {
    return *pub;
  }
  std::lock_guard<std::mutex> build_guard(compile_mu_);
  if (compiled_ != nullptr) return *compiled_;  // Lost the build race.
  SG_ASSERT_MSG(sm.finalized(), service + ": compile before sm.finalize()");

  auto rt = std::make_unique<CompiledRuntime>();
  rt->live_states_ = sm.live_state_count();
  rt->closed_state_ = sm.closed_state();

  // Fn ids in declaration order; per-fn metadata pre-resolved.
  rt->fns_.reserve(fns.size());
  auto intern_field = [&rt](const std::string& name) -> FieldId {
    auto it = rt->field_ids_.find(name);
    if (it != rt->field_ids_.end()) return it->second;
    const FieldId id = static_cast<FieldId>(rt->field_names_.size());
    rt->field_names_.push_back(name);
    rt->field_ids_.emplace(name, id);
    return id;
  };
  for (std::size_t i = 0; i < fns.size(); ++i) {
    const FnSpec& decl = fns[i];
    rt->fn_ids_.emplace(decl.name, static_cast<FnId>(i));
    CompiledFn cfn;
    cfn.decl = &decl;
    cfn.desc_idx = decl.desc_param();
    cfn.parent_idx = decl.parent_param();
    const FnId sm_fn = sm.fn_id(decl.name);
    if (sm_fn != kNoFn) {
      cfn.flags = sm.fn_flags(sm_fn);
      cfn.next_state = sm.next_state_id(sm_fn);
    }
    cfn.param_fields.reserve(decl.params.size());
    for (const auto& param : decl.params) {
      cfn.param_fields.push_back(param.role == ParamRole::kDescData ? intern_field(param.name)
                                                                    : kNoField);
    }
    if (decl.ret_is_desc && !decl.ret_data_name.empty()) {
      cfn.ret_field = intern_field(decl.ret_data_name);
    }
    if (decl.ret_adds_to.has_value()) cfn.ret_add_field = intern_field(*decl.ret_adds_to);
    rt->fns_.push_back(std::move(cfn));
  }
  SG_ASSERT_MSG(rt->field_names_.size() <= TrackedDesc::kMaxFields,
                service + ": too many tracked D_dr fields for TrackedDesc");

  for (std::size_t i = 0; i < fns.size(); ++i) {
    if (sm.is_creation(fns[i].name)) {
      rt->creation_ = static_cast<FnId>(i);
      break;
    }
  }

  // Validity matrix re-indexed from the machine's fn id space into
  // declaration order.
  rt->valid_.assign(rt->live_states_ * fns.size(), 0);
  for (std::size_t s = 0; s < rt->live_states_; ++s) {
    for (std::size_t f = 0; f < fns.size(); ++f) {
      const FnId sm_fn = sm.fn_id(fns[f].name);
      if (sm_fn != kNoFn && sm.valid(static_cast<StateId>(s), sm_fn)) {
        rt->valid_[s * fns.size() + f] = 1;
      }
    }
  }

  // Recovery walks and restore list, translated into declaration-order ids.
  auto to_decl_id = [this, &rt](FnId sm_fn) -> FnId {
    const FnId id = rt->fn_id(sm.fn_name(sm_fn));
    SG_ASSERT_MSG(id != kNoFn, service + ": sm fn " + sm.fn_name(sm_fn) + " not in fn list");
    return id;
  };
  rt->walks_.resize(rt->live_states_);
  rt->walk_lands_.resize(rt->live_states_);
  for (std::size_t s = 0; s < rt->live_states_; ++s) {
    for (const FnId sm_fn : sm.recovery_walk_ids(static_cast<StateId>(s))) {
      rt->walks_[s].push_back(to_decl_id(sm_fn));
    }
    rt->walk_lands_[s] = sm.reached_state_id(static_cast<StateId>(s));
  }
  for (const FnId sm_fn : sm.restore_fn_ids()) rt->restore_.push_back(to_decl_id(sm_fn));

  compiled_ = std::move(rt);
  compiled_pub_.store(compiled_.get(), std::memory_order_release);
  return *compiled_;
}

MechanismSet InterfaceSpec::mechanisms() const {
  MechanismSet set{Mechanism::kR0, Mechanism::kT1};
  if (desc_block) set.insert(Mechanism::kT0);
  if (desc_close_children) set.insert(Mechanism::kD0);
  if (parent != ParentKind::kSolo) set.insert(Mechanism::kD1);
  if (desc_is_global) set.insert(Mechanism::kG0);
  if (resc_has_data) set.insert(Mechanism::kG1);
  if (desc_is_global || parent == ParentKind::kXCParent) set.insert(Mechanism::kU0);
  return set;
}

void InterfaceSpec::validate() const {
  SG_ASSERT_MSG(!service.empty(), "interface spec without a service name");
  SG_ASSERT_MSG(sm.finalized(), service + ": state machine not finalized");

  // Y_dr ≡ P_dr != Solo ∧ ¬C_dr (§III-A).
  const bool expected_y = (parent != ParentKind::kSolo) && !desc_close_children;
  SG_ASSERT_MSG(desc_close_remove == expected_y,
                service + ": desc_close_remove must equal (P != Solo && !C), model rule Y_dr");

  // I_block ≠ ∅ <-> B_r (§III-B).
  SG_ASSERT_MSG(sm.block_fns().empty() == !desc_block,
                service + ": sm_block set must be non-empty iff desc_block");
  // Every blocking interface needs a wakeup counterpart for T0.
  if (desc_block) {
    SG_ASSERT_MSG(!sm.wakeup_fns().empty(), service + ": desc_block without sm_wakeup fn");
  }

  for (const auto& fn_spec : fns) {
    int desc_params = 0;
    int parent_params = 0;
    for (const auto& param : fn_spec.params) {
      if (param.role == ParamRole::kDesc) ++desc_params;
      if (param.role == ParamRole::kParentDesc) ++parent_params;
      if (param.role == ParamRole::kParentDesc) {
        SG_ASSERT_MSG(parent != ParentKind::kSolo,
                      service + "." + fn_spec.name + ": parent_desc param but P_dr == Solo");
      }
      if (param.role == ParamRole::kDescData) {
        SG_ASSERT_MSG(desc_has_data,
                      service + "." + fn_spec.name + ": desc_data param but !desc_has_data");
      }
    }
    SG_ASSERT_MSG(desc_params <= 1, service + "." + fn_spec.name + ": multiple desc params");
    SG_ASSERT_MSG(parent_params <= 1, service + "." + fn_spec.name + ": multiple parent params");

    const bool is_create = sm.is_creation(fn_spec.name);
    if (is_create) {
      SG_ASSERT_MSG(fn_spec.desc_param() == -1,
                    service + "." + fn_spec.name + ": creation fn cannot take a desc param");
      SG_ASSERT_MSG(fn_spec.ret_is_desc,
                    service + "." + fn_spec.name +
                        ": creation fn needs desc_data_retval to name the new descriptor");
    } else {
      // Non-creation fns must address a descriptor to be trackable.
      SG_ASSERT_MSG(fn_spec.desc_param() != -1,
                    service + "." + fn_spec.name + ": non-creation fn without desc param");
    }
  }

  // Replayability: every param of every fn the recovery can replay (the
  // creation fn, sm_restore fns, and every fn on some recovery walk) must be
  // derivable from tracked state at recovery time.
  auto check_replayable = [this](const FnSpec& fn_spec) {
    for (const auto& param : fn_spec.params) {
      const bool derivable = param.role != ParamRole::kPlain;
      SG_ASSERT_MSG(derivable, service + "." + fn_spec.name + ": param '" + param.name +
                                   "' is not derivable at recovery time (annotate it as desc, "
                                   "parent_desc, desc_data, or use componentid_t)");
    }
  };
  check_replayable(creation_fn());
  for (const auto& restore_name : sm.restore_fns()) check_replayable(fn(restore_name));
  for (const auto& state : sm.states()) {
    for (const auto& walk_fn : sm.recovery_walk(state)) check_replayable(fn(walk_fn));
  }

  // Building the compiled runtime enforces the remaining interning limits
  // (e.g. D_dr must fit TrackedDesc's fixed field array).
  (void)compiled();
}

}  // namespace sg::c3
