#pragma once

#include <set>
#include <string>

namespace sg::c3 {

/// The interface-driven recovery mechanisms of §III-C. SuperGlue's model maps
/// each interface's descriptor-resource parameters to the subset of these
/// mechanisms its recovery requires.
enum class Mechanism {
  kR0,  ///< Base state-machine walk from s_f to the expected state.
  kT0,  ///< Eager wakeup of blocked threads at fault time (iff B_r).
  kT1,  ///< On-demand, priority-correct recovery of descriptors.
  kD0,  ///< Children reconstructed before recursive revocation (iff C_dr).
  kD1,  ///< Parents recovered before children (iff P_dr != Solo).
  kG0,  ///< Global-descriptor recovery through the storage component.
  kG1,  ///< Resource data restored from the storage component.
  kU0,  ///< Upcalls into client components to rebuild descriptor state.
};

const char* to_string(Mechanism mechanism);

using MechanismSet = std::set<Mechanism>;

/// Renders e.g. "{R0,T0,T1}".
std::string to_string(const MechanismSet& mechanisms);

}  // namespace sg::c3
