#include "c3/desc_track.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sg::c3 {

using kernel::Value;

TrackedDesc& DescTable::create(Value vid, Value sid, std::string initial_state,
                               kernel::Args creation_args) {
  auto [it, inserted] = descs_.try_emplace(vid);
  TrackedDesc& desc = it->second;
  // Re-creating an already-tracked descriptor is legal: idempotent creation
  // fns (e.g., mman_get_page on an existing vaddr) return the same id.
  desc.vid = vid;
  desc.sid = sid;
  desc.state = std::move(initial_state);
  desc.creation_args = std::move(creation_args);
  desc.faulty = false;
  desc.zombie = false;
  return desc;
}

TrackedDesc* DescTable::find(Value vid) {
  auto it = descs_.find(vid);
  return it == descs_.end() ? nullptr : &it->second;
}

const TrackedDesc* DescTable::find(Value vid) const {
  auto it = descs_.find(vid);
  return it == descs_.end() ? nullptr : &it->second;
}

TrackedDesc* DescTable::find_by_sid(Value sid) {
  for (auto& [vid, desc] : descs_) {
    if (desc.sid == sid && !desc.zombie) return &desc;
  }
  return nullptr;
}

void DescTable::unlink_from_parent(TrackedDesc& desc) {
  if (desc.parent_vid == kNoParent) return;
  TrackedDesc* parent = find(desc.parent_vid);
  if (parent == nullptr) return;
  auto& kids = parent->children;
  kids.erase(std::remove(kids.begin(), kids.end(), desc.vid), kids.end());
  reap_if_zombie_done(parent->vid);
}

void DescTable::reap_if_zombie_done(Value vid) {
  TrackedDesc* desc = find(vid);
  if (desc != nullptr && desc->zombie && desc->children.empty()) {
    const Value parent = desc->parent_vid;
    descs_.erase(vid);
    if (parent != kNoParent) {
      // Removing the zombie may allow an ancestor zombie to be reaped too.
      TrackedDesc* up = find(parent);
      if (up != nullptr) {
        auto& kids = up->children;
        kids.erase(std::remove(kids.begin(), kids.end(), vid), kids.end());
        reap_if_zombie_done(parent);
      }
    }
  }
}

void DescTable::remove(Value vid, bool cascade) {
  TrackedDesc* desc = find(vid);
  if (desc == nullptr) return;
  if (cascade) {
    // C_dr: recursive revocation removes the whole subtree's tracking.
    const std::vector<Value> kids = desc->children;  // Copy: children mutate the map.
    for (const Value child : kids) remove(child, true);
    desc = find(vid);
    if (desc == nullptr) return;
    unlink_from_parent(*desc);
    descs_.erase(vid);
    return;
  }
  if (!desc->children.empty()) {
    // Y_dr == false with live children: keep metadata for the children (§III-A).
    desc->zombie = true;
    return;
  }
  unlink_from_parent(*desc);
  descs_.erase(vid);
}

void DescTable::mark_all_faulty() {
  for (auto& [vid, desc] : descs_) desc.faulty = true;
}

std::size_t DescTable::live_count() const {
  std::size_t count = 0;
  for (const auto& [vid, desc] : descs_) {
    if (!desc.zombie) ++count;
  }
  return count;
}

}  // namespace sg::c3
