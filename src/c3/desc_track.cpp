#include "c3/desc_track.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sg::c3 {

using kernel::Value;

TrackedDesc& DescTable::create(Value vid, Value sid, StateId initial_state,
                               kernel::Args creation_args) {
  SG_ASSERT_MSG(vid != kNoParent,
                "descriptor vid 0 collides with the kNoParent sentinel");
  std::lock_guard<std::mutex> guard(mu_);
  auto it = by_vid_.find(vid);
  std::uint32_t index;
  if (it != by_vid_.end()) {
    // Re-creating an already-tracked descriptor is legal: idempotent creation
    // fns (e.g., mman_get_page on an existing vaddr) return the same id.
    index = it->second;
    drop_sid_index(slots_[index].desc.sid_, index);
  } else if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
    by_vid_.emplace(vid, index);
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    by_vid_.emplace(vid, index);
  }
  Slot& slot = slots_[index];
  if (!slot.live) ++count_;
  slot.live = true;
  TrackedDesc& desc = slot.desc;
  desc.vid = vid;
  desc.sid_ = sid;
  desc.state = initial_state;
  desc.creation_args = std::move(creation_args);
  desc.faulty = false;
  desc.zombie = false;
  by_sid_.emplace(sid, index);
  return desc;
}

TrackedDesc* DescTable::find(Value vid) {
  std::lock_guard<std::mutex> guard(mu_);
  return find_locked(vid);
}

TrackedDesc* DescTable::find_locked(Value vid) {
  auto it = by_vid_.find(vid);
  return it == by_vid_.end() ? nullptr : &slots_[it->second].desc;
}

const TrackedDesc* DescTable::find(Value vid) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = by_vid_.find(vid);
  return it == by_vid_.end() ? nullptr : &slots_[it->second].desc;
}

TrackedDesc* DescTable::find_by_sid(Value sid) {
  std::lock_guard<std::mutex> guard(mu_);
  auto [begin, end] = by_sid_.equal_range(sid);
  for (auto it = begin; it != end; ++it) {
    Slot& slot = slots_[it->second];
    if (slot.live && !slot.desc.zombie) return &slot.desc;
  }
  return nullptr;
}

void DescTable::set_sid(TrackedDesc& desc, Value sid) {
  if (desc.sid_ == sid) return;
  std::lock_guard<std::mutex> guard(mu_);
  auto it = by_vid_.find(desc.vid);
  SG_ASSERT_MSG(it != by_vid_.end() && &slots_[it->second].desc == &desc,
                "set_sid on a record this table does not own");
  drop_sid_index(desc.sid_, it->second);
  desc.sid_ = sid;
  by_sid_.emplace(sid, it->second);
}

DescTable::Handle DescTable::handle_of(const TrackedDesc& desc) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = by_vid_.find(desc.vid);
  SG_ASSERT_MSG(it != by_vid_.end() && &slots_[it->second].desc == &desc,
                "handle_of on a record this table does not own");
  return Handle{it->second, slots_[it->second].gen};
}

TrackedDesc* DescTable::resolve(Handle handle) {
  std::lock_guard<std::mutex> guard(mu_);
  if (handle.slot >= slots_.size()) return nullptr;
  Slot& slot = slots_[handle.slot];
  if (!slot.live || slot.gen != handle.gen) return nullptr;
  return &slot.desc;
}

void DescTable::drop_sid_index(Value sid, std::uint32_t index) {
  auto [begin, end] = by_sid_.equal_range(sid);
  for (auto it = begin; it != end; ++it) {
    if (it->second == index) {
      by_sid_.erase(it);
      return;
    }
  }
}

void DescTable::erase_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  SG_ASSERT_MSG(slot.live, "erase of a dead slot");
  by_vid_.erase(slot.desc.vid);
  drop_sid_index(slot.desc.sid_, index);
  slot.desc = TrackedDesc{};
  slot.live = false;
  ++slot.gen;  // Invalidate outstanding handles to the recycled slot.
  free_.push_back(index);
  --count_;
}

void DescTable::unlink_from_parent(TrackedDesc& desc) {
  if (desc.parent_vid == kNoParent) return;
  TrackedDesc* parent = find_locked(desc.parent_vid);
  if (parent == nullptr) return;
  auto& kids = parent->children;
  kids.erase(std::remove(kids.begin(), kids.end(), desc.vid), kids.end());
  reap_if_zombie_done(parent->vid);
}

void DescTable::reap_if_zombie_done(Value vid) {
  auto it = by_vid_.find(vid);
  if (it == by_vid_.end()) return;
  TrackedDesc& desc = slots_[it->second].desc;
  if (desc.zombie && desc.children.empty()) {
    const Value parent = desc.parent_vid;
    erase_slot(it->second);
    if (parent != kNoParent) {
      // Removing the zombie may allow an ancestor zombie to be reaped too.
      TrackedDesc* up = find_locked(parent);
      if (up != nullptr) {
        auto& kids = up->children;
        kids.erase(std::remove(kids.begin(), kids.end(), vid), kids.end());
        reap_if_zombie_done(parent);
      }
    }
  }
}

void DescTable::remove(Value vid, bool cascade) {
  std::lock_guard<std::mutex> guard(mu_);
  remove_locked(vid, cascade);
}

void DescTable::remove_locked(Value vid, bool cascade) {
  auto it = by_vid_.find(vid);
  if (it == by_vid_.end()) return;
  TrackedDesc* desc = &slots_[it->second].desc;
  if (cascade) {
    // C_dr: recursive revocation removes the whole subtree's tracking.
    const std::vector<Value> kids = desc->children;  // Copy: children mutate the table.
    for (const Value child : kids) remove_locked(child, true);
    it = by_vid_.find(vid);
    if (it == by_vid_.end()) return;
    desc = &slots_[it->second].desc;
    unlink_from_parent(*desc);
    erase_slot(by_vid_.at(vid));
    return;
  }
  if (!desc->children.empty()) {
    // Y_dr == false with live children: keep metadata for the children (§III-A).
    desc->zombie = true;
    return;
  }
  unlink_from_parent(*desc);
  erase_slot(by_vid_.at(vid));
}

void DescTable::mark_all_faulty() {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto& slot : slots_) {
    if (slot.live) slot.desc.faulty = true;
  }
}

std::size_t DescTable::live_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::size_t count = 0;
  for (const auto& slot : slots_) {
    if (slot.live && !slot.desc.zombie) ++count;
  }
  return count;
}

void DescTable::clear() {
  std::lock_guard<std::mutex> guard(mu_);
  slots_.clear();
  free_.clear();
  by_vid_.clear();
  by_sid_.clear();
  count_ = 0;
}

}  // namespace sg::c3
