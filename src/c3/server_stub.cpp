#include "c3/server_stub.hpp"

#include <vector>

#include "c3/client_stub.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace sg::c3 {

using kernel::Args;
using kernel::CallCtx;
using kernel::Value;

ServerStub::ServerStub(kernel::Kernel& kernel, kernel::Component& server,
                       const InterfaceSpec& spec, StorageComponent& storage)
    : kernel_(kernel), server_(server), spec_(spec), storage_(storage) {
  SG_ASSERT_MSG(spec_.desc_is_global || spec_.parent == ParentKind::kXCParent,
                spec_.service + ": server stub only wraps G0/XCParent interfaces");
  ns_ = storage_.intern_ns(spec_.service);
  for (const auto& fn : spec_.fns) {
    // A missing descriptor can surface through the desc param or — for
    // XCParent creation fns like mman_alias_page — the parent param.
    std::vector<int> id_params;
    if (fn.desc_param() >= 0) id_params.push_back(fn.desc_param());
    if (fn.parent_param() >= 0) id_params.push_back(fn.parent_param());
    if (id_params.empty()) continue;

    auto inner = server_.replace_fn(fn.name, nullptr);
    server_.replace_fn(fn.name, [this, id_params, fn_name = fn.name,
                                 inner = std::move(inner)](CallCtx& ctx,
                                                           const Args& args) -> Value {
      const Value ret = inner(ctx, args);
      if (ret != kernel::kErrInval) return ret;
      // Unknown descriptor after a micro-reboot: ask the storage component
      // who created it (G0), upcall into the creator for recreation (U0/R0),
      // and replay the original invocation.
      bool recreated = false;
      bool record_found = false;
      for (const int idx : id_params) {
        const Value desc_id = args[static_cast<std::size_t>(idx)];
        if (desc_id == 0) continue;  // Root/none sentinel.
        const auto record = storage_.lookup_desc(ns_, desc_id);
        if (!record.has_value()) continue;
        record_found = true;
        SG_DEBUG("sstub", spec_.service << "." << fn_name << ": G0 recreate of desc " << desc_id
                                        << " via comp " << record->creator);
        const auto up = kernel_.upcall(server_.id(), record->creator,
                                       ClientStub::recreate_fn_name(spec_.service), {desc_id});
        if (!up.fault && up.ret == kernel::kOk) recreated = true;
      }
      if (!recreated) {
        ++g0_misses_;
        if (record_found) {
          // The substrate knew the creator yet the upcall could not rebuild
          // the descriptor: recovery proceeds, but degraded.
          ++degraded_misses_;
          if (degraded_hook_) degraded_hook_(spec_.service.c_str());
        }
        return ret;  // Genuinely invalid descriptor (or degraded miss).
      }
      ++g0_recoveries_;
      kernel_.trace(trace::EventKind::kMechanism, server_.id(),
                    static_cast<std::int32_t>(trace::Mechanism::kG0));
      return inner(ctx, args);  // Replay with the descriptor(s) rebuilt.
    });
  }
}

}  // namespace sg::c3
