#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "c3/cbuf.hpp"
#include "c3/ids.hpp"
#include "kernel/component.hpp"
#include "kernel/kernel.hpp"

namespace sg::c3 {

/// The storage component backing the G0 and G1 recovery mechanisms (§III-C).
///
/// G0 — global descriptors: keeps, per descriptor namespace, the mapping
///   ⟨descriptor id → creator component (+ creation metadata)⟩ so a server
///   stub that sees EINVAL for an unknown global descriptor can find which
///   client to upcall into for recreation.
///
/// G1 — resource data: keeps ⟨id, offset, length, *data⟩ associations where
///   *data is a cbuf reference, redundantly storing resource payloads (e.g.,
///   RamFS file contents) that a state-machine walk alone cannot rebuild.
///
/// Namespaces are interned: stubs resolve their service's NsId once and use
/// the id-based overloads on every recovery-path access; the string
/// overloads remain as a convenience shim for tests and tooling. Interning
/// survives reset_state — ids handed out before a (simulated) storage fault
/// stay valid.
///
/// Like the cbuf manager, the storage component is a dependency of the
/// recovery infrastructure and is not itself a fault-injection target.
class StorageComponent final : public kernel::Component {
 public:
  StorageComponent(kernel::Kernel& kernel, CbufManager& cbufs);

  /// Interns `ns`, returning its dense id (stable for the component's life).
  NsId intern_ns(const std::string& ns);
  /// Lookup without interning: kNoNs when the namespace was never interned.
  NsId find_ns(const std::string& ns) const;

  // --- G0: global descriptor registry --------------------------------------
  struct DescRecord {
    kernel::CompId creator;
    kernel::Value parent_desc;  ///< kNoDesc (-1) when none.
    std::map<std::string, kernel::Value> meta;
  };
  static constexpr kernel::Value kNoDesc = -1;

  void record_desc(NsId ns, kernel::Value desc_id, DescRecord record);
  void erase_desc(NsId ns, kernel::Value desc_id);
  std::optional<DescRecord> lookup_desc(NsId ns, kernel::Value desc_id) const;
  std::size_t desc_count(NsId ns) const;

  void record_desc(const std::string& ns, kernel::Value desc_id, DescRecord record);
  void erase_desc(const std::string& ns, kernel::Value desc_id);
  std::optional<DescRecord> lookup_desc(const std::string& ns, kernel::Value desc_id) const;
  std::size_t desc_count(const std::string& ns) const;

  // --- G1: resource data slices ---------------------------------------------
  struct DataSlice {
    kernel::Value offset = 0;
    kernel::Value length = 0;
    CbufManager::CbufId data = 0;  ///< Read-only cbuf holding the payload.
  };

  /// Stores/overwrites the slice for `id` within namespace `ns`. `id`
  /// uniquely identifies the resource (e.g., a hash of a file path).
  void store_data(NsId ns, kernel::Value id, DataSlice slice);
  std::optional<DataSlice> fetch_data(NsId ns, kernel::Value id) const;
  void erase_data(NsId ns, kernel::Value id);
  std::size_t data_count(NsId ns) const;

  void store_data(const std::string& ns, kernel::Value id, DataSlice slice);
  std::optional<DataSlice> fetch_data(const std::string& ns, kernel::Value id) const;
  void erase_data(const std::string& ns, kernel::Value id);
  std::size_t data_count(const std::string& ns) const;

  /// Stable id for path-named resources (paper: "a hash on its path").
  static kernel::Value hash_id(const std::string& path);

  void reset_state() override;

 private:
  struct Namespace {
    std::string name;
    std::map<kernel::Value, DescRecord> descs;
    std::map<kernel::Value, DataSlice> data;
  };

  Namespace* space(NsId ns);
  const Namespace* space(NsId ns) const;

  CbufManager& cbufs_;
  std::vector<Namespace> spaces_;         ///< NsId-indexed.
  std::map<std::string, NsId> ns_ids_;
};

}  // namespace sg::c3
