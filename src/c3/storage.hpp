#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "c3/cbuf.hpp"
#include "c3/ids.hpp"
#include "kernel/component.hpp"
#include "kernel/kernel.hpp"
#include "kernel/regops.hpp"
#include "util/rng.hpp"

namespace sg::c3 {

/// The storage component backing the G0 and G1 recovery mechanisms (§III-C).
///
/// G0 — global descriptors: keeps, per descriptor namespace, the mapping
///   ⟨descriptor id → creator component (+ creation metadata)⟩ so a server
///   stub that sees EINVAL for an unknown global descriptor can find which
///   client to upcall into for recreation.
///
/// G1 — resource data: keeps ⟨id, offset, length, *data⟩ associations where
///   *data is a cbuf reference, redundantly storing resource payloads (e.g.,
///   RamFS file contents) that a state-machine walk alone cannot rebuild.
///
/// Namespaces are interned: stubs resolve their service's NsId once and use
/// the id-based overloads on every recovery-path access; the string
/// overloads remain as a convenience shim for tests and tooling. Interning
/// survives reset_state — ids handed out before a (simulated) storage fault
/// stay valid.
///
/// Unlike the cbuf manager, the storage component is *not* trusted: it is a
/// fault-injection target and the recovery substrate must survive faults in
/// it (docs/STORAGE.md).
///   - Integrity: every record carries a checksum computed on write and
///     verified on read; a mismatch evicts the record (fail-stop at record
///     granularity), bumps Stats, emits a kStorageEvict trace event and
///     fires the eviction hook. scrub() audits the whole store on demand.
///   - Micro-reboot: a fault wipes the record contents via reset_state; the
///     RecoveryCoordinator then re-materializes G0 records from client-stub
///     state and components lazily re-publish their G1 data.
///   - Fault injection: when a SWIFI flip is armed against this component,
///     every entry point models pipeline occupancy (simulate_server_work)
///     exactly like the six services do, so flips can land "inside" storage
///     even though it is reached by direct call rather than Kernel::invoke.
class StorageComponent final : public kernel::Component {
 public:
  StorageComponent(kernel::Kernel& kernel, CbufManager& cbufs);

  /// Interns `ns`, returning its dense id (stable for the component's life).
  NsId intern_ns(const std::string& ns);
  /// Lookup without interning: kNoNs when the namespace was never interned.
  NsId find_ns(const std::string& ns) const;

  // --- G0: global descriptor registry --------------------------------------
  struct DescRecord {
    kernel::CompId creator;
    kernel::Value parent_desc;  ///< kNoDesc (-1) when none.
    std::map<std::string, kernel::Value> meta;
  };
  static constexpr kernel::Value kNoDesc = -1;

  void record_desc(NsId ns, kernel::Value desc_id, DescRecord record);
  void erase_desc(NsId ns, kernel::Value desc_id);
  /// Verifies the record's checksum; a corrupted record is evicted and
  /// reported as a miss (the G0 path then degrades to the U0/R0 fallback).
  std::optional<DescRecord> lookup_desc(NsId ns, kernel::Value desc_id);
  std::size_t desc_count(NsId ns) const;

  void record_desc(const std::string& ns, kernel::Value desc_id, DescRecord record);
  void erase_desc(const std::string& ns, kernel::Value desc_id);
  std::optional<DescRecord> lookup_desc(const std::string& ns, kernel::Value desc_id);
  std::size_t desc_count(const std::string& ns) const;

  // --- G1: resource data slices ---------------------------------------------
  struct DataSlice {
    kernel::Value offset = 0;
    kernel::Value length = 0;
    CbufManager::CbufId data = 0;  ///< Read-only cbuf holding the payload.
  };

  /// Stores/overwrites the slice for `id` within namespace `ns`. `id`
  /// uniquely identifies the resource (e.g., a hash of a file path).
  void store_data(NsId ns, kernel::Value id, DataSlice slice);
  /// Checksum-verified like lookup_desc: corrupt slices are evicted.
  std::optional<DataSlice> fetch_data(NsId ns, kernel::Value id);
  void erase_data(NsId ns, kernel::Value id);
  std::size_t data_count(NsId ns) const;

  void store_data(const std::string& ns, kernel::Value id, DataSlice slice);
  std::optional<DataSlice> fetch_data(const std::string& ns, kernel::Value id);
  void erase_data(const std::string& ns, kernel::Value id);
  std::size_t data_count(const std::string& ns) const;

  /// Stable id for path-named resources (paper: "a hash on its path").
  static kernel::Value hash_id(const std::string& path);

  // --- integrity audit -------------------------------------------------------
  struct ScrubReport {
    std::size_t checked = 0;
    std::size_t evicted_descs = 0;
    std::size_t evicted_data = 0;
    std::size_t evicted() const { return evicted_descs + evicted_data; }
  };
  /// Verifies every stored record against its checksum, evicting corrupted
  /// entries (each eviction traces kStorageEvict and fires the hook) and
  /// emitting one kStorageScrub summary event.
  ScrubReport scrub();

  struct Stats {
    std::uint64_t desc_evictions = 0;
    std::uint64_t data_evictions = 0;
    std::uint64_t scrubs = 0;
  };
  Stats stats() const {
    std::lock_guard<std::mutex> guard(mu_);
    return stats_;
  }

  /// Observes every checksum eviction (lookup, fetch or scrub). The
  /// RecoveryCoordinator uses this to flag degraded recovery.
  using EvictionHook = std::function<void(bool is_data, NsId ns, kernel::Value id)>;
  void set_eviction_hook(EvictionHook hook) { eviction_hook_ = std::move(hook); }

  /// TEST/SWIFI SURFACE: flips bits in a stored record *without* refreshing
  /// its checksum — models silent corruption of the substrate's memory. The
  /// next verified read (or scrub) must detect and evict it. Returns false
  /// if no such record exists.
  bool corrupt_desc(const std::string& ns, kernel::Value desc_id,
                    kernel::Value xor_mask = 0x40);
  bool corrupt_data(const std::string& ns, kernel::Value id, kernel::Value xor_mask = 0x40);

  /// Makes this component a SWIFI target: entry points run the register-file
  /// pipeline model whenever a flip is armed against this component. A fault
  /// manifests fail-stop — the storage component itself crashes and is
  /// micro-rebooted (contents wiped, interning kept) — and the interrupted
  /// operation then proceeds against the fresh store.
  void enable_fault_injection(kernel::FaultProfile profile, std::uint64_t seed);

  void reset_state() override;

 private:
  struct StoredDesc {
    DescRecord record;
    std::uint64_t sum = 0;
  };
  struct StoredData {
    DataSlice slice;
    std::uint64_t sum = 0;
  };
  struct Namespace {
    std::string name;
    std::map<kernel::Value, StoredDesc> descs;
    std::map<kernel::Value, StoredData> data;
  };

  // Both require mu_ held (they return pointers into spaces_).
  Namespace* space(NsId ns);
  const Namespace* space(NsId ns) const;

  std::uint64_t checksum_desc(NsId ns, kernel::Value id, const DescRecord& record) const;
  std::uint64_t checksum_data(NsId ns, kernel::Value id, const DataSlice& slice) const;
  /// Eviction trace + hook. Called with mu_ RELEASED: the hook re-enters the
  /// coordinator (note_degraded) and tracing walks kernel state, neither of
  /// which may nest inside the store lock.
  void announce_eviction(bool is_data, NsId ns, kernel::Value id);

  /// The SWIFI entry-point hook (see enable_fault_injection). Zero work
  /// unless a flip is armed against this component.
  void maybe_fault();

  CbufManager& cbufs_;
  /// Guards spaces_/ns_ids_/stats_ against concurrent handlers at cores>1.
  /// Narrow by design: never held across maybe_fault() (which can vector a
  /// crash and run reboot hooks), the eviction hook, or kernel tracing —
  /// only across the map/stat mutations themselves (docs/KERNEL.md).
  mutable std::mutex mu_;
  std::vector<Namespace> spaces_;         ///< NsId-indexed.
  std::map<std::string, NsId> ns_ids_;
  Stats stats_;
  EvictionHook eviction_hook_;
  bool fault_target_ = false;
  kernel::FaultProfile profile_;
  Rng rng_{0};
};

}  // namespace sg::c3
