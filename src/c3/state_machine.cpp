#include "c3/state_machine.hpp"

#include <algorithm>
#include <deque>

#include "util/assert.hpp"

namespace sg::c3 {

void DescStateMachine::add_transition(const std::string& from_fn, const std::string& to_fn) {
  SG_ASSERT_MSG(!finalized_, "add_transition after finalize");
  transitions_.emplace_back(from_fn, to_fn);
}

void DescStateMachine::set_creation(const std::string& fn) { creation_.insert(fn); }
void DescStateMachine::set_terminal(const std::string& fn) { terminal_.insert(fn); }
void DescStateMachine::set_block(const std::string& fn) { block_.insert(fn); }
void DescStateMachine::set_wakeup(const std::string& fn) { wakeup_.insert(fn); }
void DescStateMachine::set_consume(const std::string& fn) { consume_.insert(fn); }

void DescStateMachine::set_restore(const std::string& fn) {
  if (std::find(restore_.begin(), restore_.end(), fn) == restore_.end()) restore_.push_back(fn);
}

void DescStateMachine::finalize() {
  SG_ASSERT_MSG(!finalized_, "finalize called twice");
  SG_ASSERT_MSG(!creation_.empty(), "state machine needs at least one sm_creation fn");
  for (const auto& fn : terminal_) {
    SG_ASSERT_MSG(creation_.count(fn) == 0, "fn is both creation and terminal: " + fn);
  }

  // Collect every function and its outgoing transition set.
  std::map<std::string, std::set<std::string>> outgoing;
  auto touch = [&outgoing](const std::string& fn) { outgoing.emplace(fn, std::set<std::string>{}); };
  for (const auto& fn : creation_) touch(fn);
  for (const auto& fn : terminal_) touch(fn);
  for (const auto& [from, to] : transitions_) {
    touch(from);
    touch(to);
    outgoing[from].insert(to);
  }

  // Infer states: "after f" situations merge when outgoing sets are equal
  // (the paper's implicit-state rule). Any class containing a creation fn is
  // the initial state s0; terminal fns land in the closed pseudo-state.
  std::map<std::set<std::string>, std::vector<std::string>> classes;
  for (const auto& [fn, out] : outgoing) {
    if (terminal_.count(fn) != 0) continue;  // after-terminal == closed.
    classes[out].push_back(fn);
  }
  for (auto& [out, members] : classes) {
    std::sort(members.begin(), members.end());
    const bool has_create =
        std::any_of(members.begin(), members.end(),
                    [this](const std::string& fn) { return creation_.count(fn) != 0; });
    const std::string state = has_create ? std::string(kInitial) : "after_" + members.front();
    for (const auto& fn : members) fn_to_state_[fn] = state;
  }
  for (const auto& fn : terminal_) fn_to_state_[fn] = kClosed;

  // Build the state-level transition function σ.
  for (const auto& [fn, out] : outgoing) {
    if (terminal_.count(fn) != 0) continue;
    const std::string& from_state = fn_to_state_.at(fn);
    auto& edge_map = edges_[from_state];
    for (const auto& next_fn : out) {
      edge_map[next_fn] = fn_to_state_.at(next_fn);
    }
  }
  edges_.emplace(kInitial, std::map<std::string, std::string>{});  // Ensure s0 exists.

  // Precompute recovery walks: BFS from s0. Blocking edges are allowed (a
  // re-taken lock legitimately contends at the recovering thread's priority);
  // terminal and consuming edges never appear (a walk never closes a
  // descriptor nor re-consumes a one-shot condition).
  std::map<std::string, std::vector<std::string>> best;
  best[kInitial] = {};
  std::deque<std::string> frontier{kInitial};
  while (!frontier.empty()) {
    const std::string state = frontier.front();
    frontier.pop_front();
    auto edges_it = edges_.find(state);
    if (edges_it == edges_.end()) continue;
    for (const auto& [fn, next] : edges_it->second) {
      if (terminal_.count(fn) != 0) continue;
      if (consume_.count(fn) != 0) continue;  // Never re-consume a condition.
      if (best.count(next) != 0) continue;
      auto path = best[state];
      path.push_back(fn);
      best[next] = std::move(path);
      frontier.push_back(next);
    }
  }
  for (const auto& [fn, state] : fn_to_state_) {
    if (state == kClosed) continue;
    if (best.count(state) != 0) {
      walks_[state] = best[state];
      walk_lands_[state] = state;
    } else {
      // Unreachable without closing the descriptor — recover to s0 and let
      // the client's in-flight redo drive the rest.
      walks_[state] = {};
      walk_lands_[state] = kInitial;
    }
  }
  walks_[kInitial] = {};
  walk_lands_[kInitial] = kInitial;

  finalized_ = true;
}

void DescStateMachine::require_finalized() const {
  SG_ASSERT_MSG(finalized_, "DescStateMachine used before finalize()");
}

std::string DescStateMachine::next_state(const std::string& state, const std::string& fn) const {
  require_finalized();
  if (terminal_.count(fn) != 0) return kClosed;
  auto it = fn_to_state_.find(fn);
  SG_ASSERT_MSG(it != fn_to_state_.end(), "unknown fn in next_state: " + fn);
  (void)state;
  return it->second;
}

bool DescStateMachine::valid(const std::string& state, const std::string& fn) const {
  require_finalized();
  auto it = edges_.find(state);
  if (it == edges_.end()) return false;
  return it->second.count(fn) != 0;
}

std::string DescStateMachine::state_after_creation(const std::string& create_fn) const {
  require_finalized();
  SG_ASSERT_MSG(creation_.count(create_fn) != 0, create_fn + " is not a creation fn");
  return kInitial;
}

const std::vector<std::string>& DescStateMachine::recovery_walk(const std::string& state) const {
  require_finalized();
  auto it = walks_.find(state);
  SG_ASSERT_MSG(it != walks_.end(), "no recovery walk for state " + state);
  return it->second;
}

const std::string& DescStateMachine::reached_state(const std::string& state) const {
  require_finalized();
  auto it = walk_lands_.find(state);
  SG_ASSERT_MSG(it != walk_lands_.end(), "no walk target for state " + state);
  return it->second;
}

std::vector<std::string> DescStateMachine::states() const {
  require_finalized();
  std::vector<std::string> out;
  for (const auto& [state, edges] : edges_) out.push_back(state);
  std::sort(out.begin(), out.end());
  return out;
}

const std::string& DescStateMachine::state_of_fn(const std::string& fn) const {
  require_finalized();
  auto it = fn_to_state_.find(fn);
  SG_ASSERT_MSG(it != fn_to_state_.end(), "unknown fn: " + fn);
  return it->second;
}

std::size_t DescStateMachine::state_count() const {
  require_finalized();
  return edges_.size();
}

}  // namespace sg::c3
