#include "c3/state_machine.hpp"

#include <algorithm>
#include <deque>

#include "util/assert.hpp"

namespace sg::c3 {

void DescStateMachine::add_transition(const std::string& from_fn, const std::string& to_fn) {
  SG_ASSERT_MSG(!finalized_, "add_transition after finalize");
  transitions_.emplace_back(from_fn, to_fn);
}

void DescStateMachine::set_creation(const std::string& fn) { creation_.insert(fn); }
void DescStateMachine::set_terminal(const std::string& fn) { terminal_.insert(fn); }
void DescStateMachine::set_block(const std::string& fn) { block_.insert(fn); }
void DescStateMachine::set_wakeup(const std::string& fn) { wakeup_.insert(fn); }
void DescStateMachine::set_consume(const std::string& fn) { consume_.insert(fn); }

void DescStateMachine::set_restore(const std::string& fn) {
  if (std::find(restore_.begin(), restore_.end(), fn) == restore_.end()) restore_.push_back(fn);
}

void DescStateMachine::finalize() {
  SG_ASSERT_MSG(!finalized_, "finalize called twice");
  SG_ASSERT_MSG(!creation_.empty(), "state machine needs at least one sm_creation fn");
  for (const auto& fn : terminal_) {
    SG_ASSERT_MSG(creation_.count(fn) == 0, "fn is both creation and terminal: " + fn);
  }

  // Collect every function and its outgoing transition set. Only creation,
  // terminal, and transition fns participate in state inference; block/
  // wakeup/consume/restore fns outside the transition graph are still
  // interned below but shape no states.
  std::map<std::string, std::set<std::string>> outgoing;
  auto touch = [&outgoing](const std::string& fn) { outgoing.emplace(fn, std::set<std::string>{}); };
  for (const auto& fn : creation_) touch(fn);
  for (const auto& fn : terminal_) touch(fn);
  for (const auto& [from, to] : transitions_) {
    touch(from);
    touch(to);
    outgoing[from].insert(to);
  }

  // Intern functions: sorted-name order (std::set iteration), so the id
  // assignment is deterministic regardless of declaration source.
  std::set<std::string> all_fns;
  for (const auto& [fn, out] : outgoing) all_fns.insert(fn);
  for (const auto& fn : block_) all_fns.insert(fn);
  for (const auto& fn : wakeup_) all_fns.insert(fn);
  for (const auto& fn : consume_) all_fns.insert(fn);
  for (const auto& fn : restore_) all_fns.insert(fn);
  for (const auto& fn : all_fns) {
    const FnId id = static_cast<FnId>(fn_names_.size());
    fn_names_.push_back(fn);
    fn_ids_.emplace(fn, id);
    std::uint8_t flags = 0;
    if (creation_.count(fn) != 0) flags |= FnFlags::kCreation;
    if (terminal_.count(fn) != 0) flags |= FnFlags::kTerminal;
    if (block_.count(fn) != 0) flags |= FnFlags::kBlock;
    if (wakeup_.count(fn) != 0) flags |= FnFlags::kWakeup;
    if (consume_.count(fn) != 0) flags |= FnFlags::kConsume;
    fn_flags_.push_back(flags);
  }

  // Infer states: "after f" situations merge when outgoing sets are equal
  // (the paper's implicit-state rule). Any class containing a creation fn is
  // the initial state s0; terminal fns land in the closed pseudo-state.
  std::map<std::string, std::string> fn_to_state;
  std::map<std::set<std::string>, std::vector<std::string>> classes;
  for (const auto& [fn, out] : outgoing) {
    if (terminal_.count(fn) != 0) continue;  // after-terminal == closed.
    classes[out].push_back(fn);
  }
  for (auto& [out, members] : classes) {
    std::sort(members.begin(), members.end());
    const bool has_create =
        std::any_of(members.begin(), members.end(),
                    [this](const std::string& fn) { return creation_.count(fn) != 0; });
    const std::string state = has_create ? std::string(kInitial) : "after_" + members.front();
    for (const auto& fn : members) fn_to_state[fn] = state;
  }
  for (const auto& fn : terminal_) fn_to_state[fn] = kClosed;

  // Intern states: s0 first (kStateInitial == 0), the remaining live states
  // in sorted order, and the closed pseudo-state last.
  std::set<std::string> live_states{kInitial};  // s0 exists even with no edges.
  for (const auto& [fn, state] : fn_to_state) {
    if (state != kClosed) live_states.insert(state);
  }
  state_names_.push_back(kInitial);
  state_ids_.emplace(kInitial, kStateInitial);
  for (const auto& state : live_states) {
    if (state == kInitial) continue;
    state_ids_.emplace(state, static_cast<StateId>(state_names_.size()));
    state_names_.push_back(state);
  }
  closed_state_ = static_cast<StateId>(state_names_.size());
  state_names_.push_back(kClosed);
  state_ids_.emplace(kClosed, closed_state_);

  // σ per fn: the interned "after fn" class.
  fn_state_.resize(fn_names_.size(), kNoState);
  for (const auto& [fn, state] : fn_to_state) {
    fn_state_[static_cast<std::size_t>(fn_ids_.at(fn))] = state_ids_.at(state);
  }

  // Validity matrix over live states × fns.
  const std::size_t live_count = static_cast<std::size_t>(closed_state_);
  valid_.assign(live_count * fn_names_.size(), 0);
  for (const auto& [fn, out] : outgoing) {
    if (terminal_.count(fn) != 0) continue;
    const auto from_state = static_cast<std::size_t>(state_ids_.at(fn_to_state.at(fn)));
    for (const auto& next_fn : out) {
      valid_[from_state * fn_names_.size() + static_cast<std::size_t>(fn_ids_.at(next_fn))] = 1;
    }
  }

  // Precompute recovery walks: BFS from s0. Blocking edges are allowed (a
  // re-taken lock legitimately contends at the recovering thread's priority);
  // terminal and consuming edges never appear (a walk never closes a
  // descriptor nor re-consumes a one-shot condition).
  std::map<StateId, std::vector<FnId>> best;
  best[kStateInitial] = {};
  std::deque<StateId> frontier{kStateInitial};
  while (!frontier.empty()) {
    const StateId state = frontier.front();
    frontier.pop_front();
    for (FnId fn = 0; fn < static_cast<FnId>(fn_names_.size()); ++fn) {
      if (valid_[static_cast<std::size_t>(state) * fn_names_.size() +
                 static_cast<std::size_t>(fn)] == 0) {
        continue;
      }
      if ((fn_flags_[static_cast<std::size_t>(fn)] &
           (FnFlags::kTerminal | FnFlags::kConsume)) != 0) {
        continue;  // Never close nor re-consume during a walk.
      }
      const StateId next = fn_state_[static_cast<std::size_t>(fn)];
      if (best.count(next) != 0) continue;
      auto path = best[state];
      path.push_back(fn);
      best[next] = std::move(path);
      frontier.push_back(next);
    }
  }
  walk_ids_.resize(live_count);
  walk_lands_.assign(live_count, kStateInitial);
  walk_names_.resize(live_count);
  for (StateId state = 0; state < closed_state_; ++state) {
    auto it = best.find(state);
    if (it != best.end()) {
      walk_ids_[static_cast<std::size_t>(state)] = it->second;
      walk_lands_[static_cast<std::size_t>(state)] = state;
    }
    // else: unreachable without closing the descriptor — recover to s0 (the
    // empty walk) and let the client's in-flight redo drive the rest.
    for (const FnId fn : walk_ids_[static_cast<std::size_t>(state)]) {
      walk_names_[static_cast<std::size_t>(state)].push_back(
          fn_names_[static_cast<std::size_t>(fn)]);
    }
  }

  for (const auto& fn : restore_) restore_ids_.push_back(fn_ids_.at(fn));

  finalized_ = true;
}

void DescStateMachine::require_finalized() const {
  SG_ASSERT_MSG(finalized_, "DescStateMachine used before finalize()");
}

FnId DescStateMachine::require_fn(const std::string& fn) const {
  const FnId id = fn_id(fn);
  SG_ASSERT_MSG(id != kNoFn, "unknown fn: " + fn);
  return id;
}

// --- interned id API ---------------------------------------------------------

FnId DescStateMachine::fn_id(const std::string& fn) const {
  require_finalized();
  auto it = fn_ids_.find(fn);
  return it == fn_ids_.end() ? kNoFn : it->second;
}

const std::string& DescStateMachine::fn_name(FnId id) const {
  require_finalized();
  SG_ASSERT_MSG(id >= 0 && static_cast<std::size_t>(id) < fn_names_.size(), "bad fn id");
  return fn_names_[static_cast<std::size_t>(id)];
}

std::uint8_t DescStateMachine::fn_flags(FnId id) const {
  require_finalized();
  SG_ASSERT_MSG(id >= 0 && static_cast<std::size_t>(id) < fn_flags_.size(), "bad fn id");
  return fn_flags_[static_cast<std::size_t>(id)];
}

StateId DescStateMachine::state_id(const std::string& state) const {
  require_finalized();
  auto it = state_ids_.find(state);
  return it == state_ids_.end() ? kNoState : it->second;
}

const std::string& DescStateMachine::state_name(StateId id) const {
  require_finalized();
  SG_ASSERT_MSG(id >= 0 && static_cast<std::size_t>(id) < state_names_.size(), "bad state id");
  return state_names_[static_cast<std::size_t>(id)];
}

std::size_t DescStateMachine::live_state_count() const {
  require_finalized();
  return static_cast<std::size_t>(closed_state_);
}

bool DescStateMachine::valid(StateId state, FnId fn) const {
  if (state < 0 || state >= closed_state_ || fn < 0 ||
      static_cast<std::size_t>(fn) >= fn_names_.size()) {
    return false;
  }
  return valid_[static_cast<std::size_t>(state) * fn_names_.size() +
                static_cast<std::size_t>(fn)] != 0;
}

StateId DescStateMachine::next_state_id(FnId fn) const {
  require_finalized();
  SG_ASSERT_MSG(fn >= 0 && static_cast<std::size_t>(fn) < fn_state_.size(), "bad fn id");
  return fn_state_[static_cast<std::size_t>(fn)];
}

const std::vector<FnId>& DescStateMachine::recovery_walk_ids(StateId state) const {
  require_finalized();
  SG_ASSERT_MSG(state >= 0 && state < closed_state_,
                "no recovery walk for state id " + std::to_string(state));
  return walk_ids_[static_cast<std::size_t>(state)];
}

StateId DescStateMachine::reached_state_id(StateId state) const {
  require_finalized();
  SG_ASSERT_MSG(state >= 0 && state < closed_state_,
                "no walk target for state id " + std::to_string(state));
  return walk_lands_[static_cast<std::size_t>(state)];
}

// --- string compatibility API ------------------------------------------------

std::string DescStateMachine::next_state(const std::string& state, const std::string& fn) const {
  require_finalized();
  (void)state;
  return state_name(next_state_id(require_fn(fn)));
}

bool DescStateMachine::valid(const std::string& state, const std::string& fn) const {
  require_finalized();
  return valid(state_id(state), fn_id(fn));
}

std::string DescStateMachine::state_after_creation(const std::string& create_fn) const {
  require_finalized();
  SG_ASSERT_MSG(creation_.count(create_fn) != 0, create_fn + " is not a creation fn");
  return kInitial;
}

const std::vector<std::string>& DescStateMachine::recovery_walk(const std::string& state) const {
  require_finalized();
  const StateId id = state_id(state);
  SG_ASSERT_MSG(id != kNoState && id < closed_state_, "no recovery walk for state " + state);
  return walk_names_[static_cast<std::size_t>(id)];
}

const std::string& DescStateMachine::reached_state(const std::string& state) const {
  require_finalized();
  const StateId id = state_id(state);
  SG_ASSERT_MSG(id != kNoState && id < closed_state_, "no walk target for state " + state);
  return state_name(walk_lands_[static_cast<std::size_t>(id)]);
}

std::vector<std::string> DescStateMachine::states() const {
  require_finalized();
  std::vector<std::string> out(state_names_.begin(), state_names_.end() - 1);
  std::sort(out.begin(), out.end());
  return out;
}

const std::string& DescStateMachine::state_of_fn(const std::string& fn) const {
  require_finalized();
  return state_name(next_state_id(require_fn(fn)));
}

}  // namespace sg::c3
