#include "c3/cbuf.hpp"

#include <cstring>

#include "util/assert.hpp"

namespace sg::c3 {

using kernel::Args;
using kernel::CallCtx;
using kernel::CompId;
using kernel::Value;

CbufManager::CbufManager(kernel::Kernel& kernel)
    : Component(kernel, "cbuf_mgr", /*image_bytes=*/32 * 1024) {
  // Exported so untyped callers (and the invocation-count accounting) can go
  // through the kernel; the typed methods below are the hot path for the
  // trusted in-process users.
  export_fn("cbuf_alloc", [this](CallCtx& ctx, const Args& args) -> Value {
    SG_ASSERT(args.size() == 1);
    return alloc(ctx.client, static_cast<std::size_t>(args[0]));
  });
  export_fn("cbuf_free", [this](CallCtx&, const Args& args) -> Value {
    SG_ASSERT(args.size() == 1);
    free(args[0]);
    return kernel::kOk;
  });
  export_fn("cbuf_size", [this](CallCtx&, const Args& args) -> Value {
    SG_ASSERT(args.size() == 1);
    return static_cast<Value>(size(args[0]));
  });
}

CbufManager::CbufId CbufManager::alloc(CompId owner, std::size_t size) {
  std::lock_guard<std::mutex> guard(mu_);
  if (capacity_bytes_ != 0 && live_bytes_ + size > capacity_bytes_) {
    return kernel::kErrNoMem;
  }
  const CbufId id = next_id_++;
  buffers_.emplace(id, Cbuf{owner, std::vector<unsigned char>(size, 0)});
  live_bytes_ += size;
  return id;
}

bool CbufManager::write(CompId writer, CbufId id, std::size_t offset, const void* data,
                        std::size_t len) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = buffers_.find(id);
  if (it == buffers_.end()) return false;
  Cbuf& buf = it->second;
  if (buf.owner != writer) return false;  // Read-only for non-producers.
  if (offset + len > buf.bytes.size()) return false;
  std::memcpy(buf.bytes.data() + offset, data, len);
  return true;
}

bool CbufManager::read(CbufId id, std::size_t offset, void* out, std::size_t len) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = buffers_.find(id);
  if (it == buffers_.end()) return false;
  const Cbuf& buf = it->second;
  if (offset + len > buf.bytes.size()) return false;
  std::memcpy(out, buf.bytes.data() + offset, len);
  return true;
}

const unsigned char* CbufManager::view(CbufId id, std::size_t offset, std::size_t len) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = buffers_.find(id);
  if (it == buffers_.end()) return nullptr;
  const Cbuf& buf = it->second;
  if (offset + len > buf.bytes.size()) return nullptr;
  return buf.bytes.data() + offset;
}

bool CbufManager::write_string(CompId writer, CbufId id, const std::string& text) {
  return write(writer, id, 0, text.data(), text.size());
}

std::string CbufManager::read_string(CbufId id) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = buffers_.find(id);
  SG_ASSERT_MSG(it != buffers_.end(), "read_string of unknown cbuf");
  return std::string(it->second.bytes.begin(), it->second.bytes.end());
}

std::size_t CbufManager::size(CbufId id) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = buffers_.find(id);
  return it == buffers_.end() ? 0 : it->second.bytes.size();
}

void CbufManager::free(CbufId id) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = buffers_.find(id);
  if (it == buffers_.end()) return;
  live_bytes_ -= it->second.bytes.size();
  buffers_.erase(it);
}

bool CbufManager::chown(CompId from, CbufId id, CompId to) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = buffers_.find(id);
  if (it == buffers_.end() || it->second.owner != from) return false;
  it->second.owner = to;
  return true;
}

void CbufManager::reset_state() {
  // Trusted component: never micro-rebooted during fault campaigns (§II-E).
  // reset_state exists for full system teardown between campaign runs.
  std::lock_guard<std::mutex> guard(mu_);
  buffers_.clear();
  next_id_ = 1;
  live_bytes_ = 0;  // The budget itself (capacity_bytes_) is configuration.
}

}  // namespace sg::c3
