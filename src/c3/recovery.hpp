#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "c3/client_stub.hpp"
#include "c3/interface_spec.hpp"
#include "c3/server_stub.hpp"
#include "c3/storage.hpp"
#include "kernel/component.hpp"
#include "kernel/kernel.hpp"

namespace sg::c3 {

/// When descriptors are walked back from s_f (§II-C).
enum class RecoveryPolicy {
  kOnDemand,  ///< T1: at first touch, at the touching thread's priority (default).
  kEager,     ///< All descriptors of all clients immediately at fault time.
};

/// Wakes one thread that was blocked inside a rebooted component. Supplied
/// per service because the I_wakeup function lives in the recovering
/// server's *server* (the scheduler component for most services; the kernel
/// for the scheduler itself).
using WakeupFn = std::function<void(kernel::ThreadId)>;

/// Glues the pieces of interface-driven recovery together: it owns the
/// compiled InterfaceSpecs, hands out per-client stubs, wraps G0 servers
/// with server stubs, and — installed as the kernel's reboot hook — performs
/// step (5) of §III-D: eager (T0) wakeup of blocked threads at the inherited
/// priority, immediately after the booter micro-reboots a component.
class RecoveryCoordinator {
 public:
  RecoveryCoordinator(kernel::Kernel& kernel, StorageComponent& storage);

  RecoveryCoordinator(const RecoveryCoordinator&) = delete;
  RecoveryCoordinator& operator=(const RecoveryCoordinator&) = delete;

  /// Registers a system service: its server component, its compiled interface
  /// spec (validated here), and its wakeup adapter. Creates the server-side
  /// stub when the interface is global (G0).
  void register_service(kernel::Component& server, InterfaceSpec spec, WakeupFn wakeup);

  /// Get-or-create the client stub for (client, service).
  ClientStub& client_stub(kernel::Component& client, const std::string& service);

  const InterfaceSpec& spec(const std::string& service) const;
  const InterfaceSpec* find_spec_by_comp(kernel::CompId comp) const;
  kernel::CompId server_of(const std::string& service) const;

  void set_policy(RecoveryPolicy policy) { policy_ = policy; }
  RecoveryPolicy policy() const { return policy_; }

  int reboots_handled() const { return reboots_handled_.load(std::memory_order_relaxed); }
  int t0_wakeups() const { return t0_wakeups_.load(std::memory_order_relaxed); }

  /// Storage-component reboots handled by re-materializing G0 from the
  /// client stubs' tracked state (G1 repopulates lazily at its publishers).
  int storage_rebuilds() const { return storage_rebuilds_.load(std::memory_order_relaxed); }

  /// Degraded recovery (§graceful degradation, docs/STORAGE.md): recovery
  /// completed but leaned on a fallback because the substrate lost state —
  /// a checksum eviction, a G0 record whose recreation upcall failed, or a
  /// resource whose G1 copy was gone. Sticky until clear_degraded().
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }
  std::uint64_t degraded_events() const {
    return degraded_events_.load(std::memory_order_relaxed);
  }
  void clear_degraded() { degraded_.store(false, std::memory_order_relaxed); }
  /// Raise the degraded flag; components report their own fallbacks here.
  void note_degraded(const char* why);

  /// Reboots that arrived while another reboot was still being handled (a
  /// fault during recovery). They are queued and processed after the outer
  /// recovery unwinds, so on_reboot is safe to re-enter.
  int reentrant_reboots() const { return reentrant_reboots_.load(std::memory_order_relaxed); }
  /// Eager (T0) descriptor sweeps that were aborted and restarted because a
  /// nested reboot invalidated descriptors mid-sweep.
  int replay_restarts() const { return replay_restarts_.load(std::memory_order_relaxed); }

 private:
  struct Service {
    kernel::Component* server = nullptr;
    InterfaceSpec spec;
    WakeupFn wakeup;
    std::unique_ptr<ServerStub> server_stub;
    /// Keyed by client component id.
    std::map<kernel::CompId, std::unique_ptr<ClientStub>> client_stubs;
  };

  /// Kernel reboot hook. Re-entrant-safe: a reboot arriving while another is
  /// being handled (a fault *during* recovery) is queued and drained after
  /// the outer recovery finishes, and it bumps `generation_` so an in-flight
  /// eager sweep aborts and restarts against the new fault epoch.
  void on_reboot(kernel::CompId comp);

  /// The actual recovery work for one reboot: restartable eager descriptor
  /// sweep (kEager policy) + T0 wakeups of blocked threads. Idempotent --
  /// recover_all skips descriptors that are not marked faulty.
  void process_reboot(kernel::CompId comp);

  Service* find_service_by_comp(kernel::CompId comp);

  /// Tentpole: the storage component itself rebooted (its contents are
  /// gone). Re-materialize every service's G0 creator records from the
  /// client stubs' own tracked descriptor state, bracketed by the
  /// kStorageRebuildBegin/End trace events the invariant checker audits.
  void rebuild_storage();

  /// Per-recovery-context re-entrancy state. At cores=1 every reboot lands in
  /// slot 0 (the kernel's recovery_owner_key degenerates), reproducing the
  /// old single-slot behavior exactly; at cores>1 each concurrent recovery
  /// domain gets its own depth/generation/pending so a nested fault in one
  /// domain never defers or aborts an unrelated domain's recovery work.
  struct Reentrancy {
    int depth = 0;                       ///< >0 while on_reboot is running.
    std::uint64_t generation = 0;        ///< Bumped by every nested reboot.
    std::deque<kernel::CompId> pending;  ///< Reboots deferred by re-entrancy.
  };
  /// reent_[owner].generation under reent_mu_.
  std::uint64_t generation_of(std::int64_t owner);

  kernel::Kernel& kernel_;
  StorageComponent& storage_;
  /// Guards the client_stubs maps' get-or-create against concurrent first
  /// touches at cores>1 (stub *use* is serialized by the client component's
  /// occupancy; only map insertion needs the lock).
  std::mutex stub_mu_;
  std::map<std::string, Service> services_;
  RecoveryPolicy policy_ = RecoveryPolicy::kOnDemand;
  /// Atomics: counters are bumped from whichever core runs a recovery while
  /// readers poll from the campaign driver; degraded flags additionally fire
  /// from eviction hooks.
  std::atomic<int> reboots_handled_{0};
  std::atomic<int> t0_wakeups_{0};
  std::atomic<int> reentrant_reboots_{0};
  std::atomic<int> replay_restarts_{0};
  std::atomic<int> storage_rebuilds_{0};
  std::atomic<bool> degraded_{false};
  std::atomic<std::uint64_t> degraded_events_{0};
  /// Keyed by the kernel's recovery_owner_key. Guarded by reent_mu_ (short
  /// holds only — never across process_reboot or any kernel call); the state
  /// *within* one slot is still serialized by that owner's recovery domain.
  std::unordered_map<std::int64_t, Reentrancy> reent_;
  std::mutex reent_mu_;
};

}  // namespace sg::c3
