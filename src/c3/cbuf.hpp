#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernel/component.hpp"
#include "kernel/kernel.hpp"

namespace sg::c3 {

/// Zero-copy shared buffer manager (cbufs, §II-C / [17]). A trusted
/// component, like the kernel: it is *not* a fault-injection target (§II-E),
/// and its buffers survive micro-reboots of every other component — which is
/// precisely why the storage component can keep resource data in cbufs.
///
/// The producing component has write access; everyone else is read-only.
/// That asymmetry is what prevents fault propagation through shared buffers,
/// and it is enforced here structurally (writes are owner-checked).
class CbufManager final : public kernel::Component {
 public:
  using CbufId = kernel::Value;

  explicit CbufManager(kernel::Kernel& kernel);

  /// Allocates a buffer of `size` bytes owned (writable) by `owner`.
  /// Returns kernel::kErrNoMem when a byte budget is set and exhausted.
  CbufId alloc(kernel::CompId owner, std::size_t size);

  /// Optional byte budget modelling a fixed cbuf arena (embedded systems
  /// preallocate). 0 = unlimited (the default; no behavior change). When
  /// set, alloc() fails with kErrNoMem once live bytes would exceed it.
  void set_capacity_bytes(std::size_t capacity) {
    std::lock_guard<std::mutex> guard(mu_);
    capacity_bytes_ = capacity;
  }
  std::size_t capacity_bytes() const {
    std::lock_guard<std::mutex> guard(mu_);
    return capacity_bytes_;
  }
  std::size_t live_bytes() const {
    std::lock_guard<std::mutex> guard(mu_);
    return live_bytes_;
  }

  /// Owner-only write. Returns false (and writes nothing) on a bounds or
  /// ownership violation.
  bool write(kernel::CompId writer, CbufId id, std::size_t offset, const void* data,
             std::size_t len);

  /// Read-only access for any component.
  bool read(CbufId id, std::size_t offset, void* out, std::size_t len) const;

  /// Zero-copy read-only view of `len` bytes at `offset`, or nullptr on a
  /// bounds/liveness miss. Safe to hold while the buffer is alive: a cbuf's
  /// byte storage is heap-allocated at alloc() and never resized afterward
  /// (write() is bounds-checked against the original size), so the pointer
  /// survives map rehashes and concurrent alloc/free of other buffers. This
  /// is the mechanism behind the web server's slice-served responses: the
  /// response is rendered once into a shared cbuf and every request serves a
  /// view of it, paying no per-request copy (docs/WEBSRV.md).
  const unsigned char* view(CbufId id, std::size_t offset, std::size_t len) const;

  /// Convenience accessors for string payloads (HTTP bodies, paths).
  bool write_string(kernel::CompId writer, CbufId id, const std::string& text);
  std::string read_string(CbufId id) const;

  std::size_t size(CbufId id) const;
  bool exists(CbufId id) const {
    std::lock_guard<std::mutex> guard(mu_);
    return buffers_.count(id) != 0;
  }
  void free(CbufId id);

  /// Transfers write ownership (used when a producer hands a buffer to the
  /// storage component for safekeeping).
  bool chown(kernel::CompId from, CbufId id, kernel::CompId to);

  std::size_t live_buffers() const {
    std::lock_guard<std::mutex> guard(mu_);
    return buffers_.size();
  }

  void reset_state() override;

 private:
  struct Cbuf {
    kernel::CompId owner;
    std::vector<unsigned char> bytes;
  };

  /// Guards all cbuf state. Trusted component reached by direct call from
  /// concurrently-running handlers at cores>1; pure data operations, so one
  /// short-hold mutex suffices (never held across kernel calls or hooks).
  mutable std::mutex mu_;
  std::unordered_map<CbufId, Cbuf> buffers_;
  CbufId next_id_ = 1;
  std::size_t capacity_bytes_ = 0;  ///< 0 = unlimited.
  std::size_t live_bytes_ = 0;
};

}  // namespace sg::c3
