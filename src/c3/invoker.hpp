#pragma once

#include <string>

#include "kernel/kernel.hpp"

namespace sg::c3 {

/// Minimal invocation surface the typed client APIs program against. Three
/// implementations exist, matching the paper's evaluation variants:
///   - PassthroughInvoker : no fault tolerance (base COMPOSITE),
///   - c3stubs::*Stub     : hand-written C3 recovery stubs,
///   - c3::ClientStub     : SuperGlue-generated/interpreted stubs.
class Invoker {
 public:
  virtual ~Invoker() = default;
  virtual kernel::Value call(const std::string& fn, const kernel::Args& args) = 0;
};

/// Direct kernel invocation with no tracking and no recovery. A server fault
/// surfaces as a plain error return (the system would normally have to
/// reboot); used as the "COMPOSITE without C3/SuperGlue" baseline.
class PassthroughInvoker final : public Invoker {
 public:
  PassthroughInvoker(kernel::Kernel& kernel, kernel::CompId client, kernel::CompId server)
      : kernel_(kernel), client_(client), server_(server) {}

  kernel::Value call(const std::string& fn, const kernel::Args& args) override {
    const kernel::InvokeResult res = kernel_.invoke(client_, server_, fn, args);
    return res.fault ? kernel::kErrAgain : res.ret;
  }

 private:
  kernel::Kernel& kernel_;
  kernel::CompId client_;
  kernel::CompId server_;
};

}  // namespace sg::c3
