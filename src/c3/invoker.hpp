#pragma once

#include <string>
#include <vector>

#include "c3/ids.hpp"
#include "kernel/kernel.hpp"

namespace sg::c3 {

/// Minimal invocation surface the typed client APIs program against. Three
/// implementations exist, matching the paper's evaluation variants:
///   - PassthroughInvoker : no fault tolerance (base COMPOSITE),
///   - c3stubs::*Stub     : hand-written C3 recovery stubs,
///   - c3::ClientStub     : SuperGlue-generated/interpreted stubs.
///
/// Callers resolve each function name once (`resolve`) and invoke by the
/// returned dense id (`call_id`) from then on, keeping string hashing off
/// the per-invocation path. The string `call` remains as a compatibility
/// entry point; the base-class defaults below let an implementation override
/// only `call` and still serve id-based callers.
class Invoker {
 public:
  virtual ~Invoker() = default;
  virtual kernel::Value call(const std::string& fn, const kernel::Args& args) = 0;

  /// Interns `fn` into this invoker's id space. The default keeps a private
  /// name table so call_id can forward to the string path; stub
  /// implementations override this with their compiled interface ids.
  virtual FnId resolve(const std::string& fn) {
    for (std::size_t i = 0; i < resolved_names_.size(); ++i) {
      if (resolved_names_[i] == fn) return static_cast<FnId>(i);
    }
    resolved_names_.push_back(fn);
    return static_cast<FnId>(resolved_names_.size() - 1);
  }

  /// Invokes by interned id. `id` must come from this invoker's resolve().
  virtual kernel::Value call_id(FnId id, const kernel::Args& args) {
    return call(resolved_names_[static_cast<std::size_t>(id)], args);
  }

 private:
  std::vector<std::string> resolved_names_;
};

/// Direct kernel invocation with no tracking and no recovery. A server fault
/// surfaces as a plain error return (the system would normally have to
/// reboot); used as the "COMPOSITE without C3/SuperGlue" baseline.
class PassthroughInvoker final : public Invoker {
 public:
  PassthroughInvoker(kernel::Kernel& kernel, kernel::CompId client, kernel::CompId server)
      : kernel_(kernel), client_(client), server_(server) {}

  kernel::Value call(const std::string& fn, const kernel::Args& args) override {
    const kernel::InvokeResult res = kernel_.invoke(client_, server_, fn, args);
    return res.fault ? kernel::kErrAgain : res.ret;
  }

 private:
  kernel::Kernel& kernel_;
  kernel::CompId client_;
  kernel::CompId server_;
};

}  // namespace sg::c3
