#include "c3/recovery.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace sg::c3 {

using kernel::CompId;
using kernel::ThreadId;

RecoveryCoordinator::RecoveryCoordinator(kernel::Kernel& kernel, StorageComponent& storage)
    : kernel_(kernel), storage_(storage) {
  kernel_.add_reboot_hook([this](CompId comp) { on_reboot(comp); });
  // Integrity: every checksum eviction means the substrate silently lost a
  // record; whatever recovery that record would have served now takes the
  // fallback path, so the episode is degraded.
  storage_.set_eviction_hook([this](bool is_data, NsId, kernel::Value) {
    note_degraded(is_data ? "G1 record evicted by checksum" : "G0 record evicted by checksum");
  });
}

void RecoveryCoordinator::note_degraded(const char* why) {
  degraded_.store(true, std::memory_order_relaxed);
  degraded_events_.fetch_add(1, std::memory_order_relaxed);
  SG_DEBUG("recovery", "degraded recovery: " << why);
}

void RecoveryCoordinator::register_service(kernel::Component& server, InterfaceSpec spec,
                                           WakeupFn wakeup) {
  spec.validate();
  const std::string service = spec.service;
  SG_ASSERT_MSG(services_.count(service) == 0, "service registered twice: " + service);
  Service& svc = services_[service];
  svc.server = &server;
  svc.spec = std::move(spec);
  svc.wakeup = std::move(wakeup);
  if (svc.spec.desc_is_global || svc.spec.parent == ParentKind::kXCParent) {
    svc.server_stub = std::make_unique<ServerStub>(kernel_, server, svc.spec, storage_);
    svc.server_stub->set_degraded_hook(
        [this](const char*) { note_degraded("G0 record found but recreation upcall failed"); });
  }
}

ClientStub& RecoveryCoordinator::client_stub(kernel::Component& client,
                                             const std::string& service) {
  auto it = services_.find(service);
  SG_ASSERT_MSG(it != services_.end(), "unknown service: " + service);
  Service& svc = it->second;
  std::lock_guard<std::mutex> guard(stub_mu_);
  auto& slot = svc.client_stubs[client.id()];
  if (!slot) {
    slot = std::make_unique<ClientStub>(kernel_, client, svc.server->id(), svc.spec, &storage_);
  }
  return *slot;
}

const InterfaceSpec& RecoveryCoordinator::spec(const std::string& service) const {
  auto it = services_.find(service);
  SG_ASSERT_MSG(it != services_.end(), "unknown service: " + service);
  return it->second.spec;
}

const InterfaceSpec* RecoveryCoordinator::find_spec_by_comp(CompId comp) const {
  for (const auto& [name, svc] : services_) {
    if (svc.server->id() == comp) return &svc.spec;
  }
  return nullptr;
}

kernel::CompId RecoveryCoordinator::server_of(const std::string& service) const {
  auto it = services_.find(service);
  SG_ASSERT_MSG(it != services_.end(), "unknown service: " + service);
  return it->second.server->id();
}

RecoveryCoordinator::Service* RecoveryCoordinator::find_service_by_comp(CompId comp) {
  for (auto& [name, svc] : services_) {
    if (svc.server->id() == comp) return &svc;
  }
  return nullptr;
}

std::uint64_t RecoveryCoordinator::generation_of(std::int64_t owner) {
  std::lock_guard<std::mutex> lock(reent_mu_);
  return reent_[owner].generation;
}

void RecoveryCoordinator::on_reboot(CompId comp) {
  // Reboot hooks run inside a recovery domain (cores>1) or on the single
  // runner (cores==1); either way the owner's Reentrancy slot below is
  // serialized by that domain — reent_mu_ only guards the *map* against
  // concurrent disjoint-domain recoveries touching their own slots.
  SG_ASSERT_MSG(kernel_.recovery_token_held_by_caller(),
                "on_reboot outside a recovery domain");
  const std::int64_t owner = kernel_.recovery_owner_key();
  {
    std::lock_guard<std::mutex> lock(reent_mu_);
    Reentrancy& re = reent_[owner];
    if (re.depth > 0) {
      // Fault during recovery: a replayed invocation (or a group member's
      // reboot) faulted while this coordinator was already handling a reboot
      // in the same domain. The raw micro-reboot (image restore + epoch
      // bump) has already run in the kernel; only *our* recovery work is
      // deferred until the outer recovery unwinds, so the coordinator never
      // recurses. The generation bump tells this domain's in-flight eager
      // sweep its descriptors just went stale.
      reentrant_reboots_.fetch_add(1, std::memory_order_relaxed);
      ++re.generation;
      re.pending.push_back(comp);
      SG_DEBUG("recovery", "reboot of comp " << comp << " deferred (depth " << re.depth << ")");
      return;
    }
  }

  struct DepthGuard {
    RecoveryCoordinator& co;
    std::int64_t owner;
    DepthGuard(RecoveryCoordinator& c, std::int64_t o) : co(c), owner(o) {
      std::lock_guard<std::mutex> lock(co.reent_mu_);
      ++co.reent_[owner].depth;
    }
    ~DepthGuard() {
      std::lock_guard<std::mutex> lock(co.reent_mu_);
      --co.reent_[owner].depth;
    }
  } guard(*this, owner);

  process_reboot(comp);
  int drained = 0;
  for (;;) {
    CompId next = kernel::kNoComp;
    {
      std::lock_guard<std::mutex> lock(reent_mu_);
      std::deque<CompId>& pending = reent_[owner].pending;
      if (pending.empty()) break;
      next = pending.front();
      pending.pop_front();
    }
    SG_ASSERT_MSG(++drained <= 64, "deferred-reboot queue is not converging");
    process_reboot(next);
  }
}

void RecoveryCoordinator::process_reboot(CompId comp) {
  if (comp == storage_.id()) {
    rebuild_storage();
    return;
  }
  Service* svc = find_service_by_comp(comp);
  if (svc == nullptr) return;  // Not a recovery-managed component.
  reboots_handled_.fetch_add(1, std::memory_order_relaxed);
  SG_DEBUG("recovery", "handling reboot of " << svc->spec.service);

  if (policy_ == RecoveryPolicy::kEager) {
    // C3's eager mode: rebuild every client's descriptors right now, at the
    // faulting thread's (boosted) priority. The sweep is restartable: if a
    // nested reboot lands mid-sweep (this domain's generation changes),
    // descriptors rebuilt so far are stale again, so abort and start over.
    // Safe because recover_all only touches descriptors still marked faulty.
    // A concurrent disjoint domain bumps only its *own* generation, so it
    // never aborts this sweep.
    const std::int64_t owner = kernel_.recovery_owner_key();
    for (int attempt = 0;; ++attempt) {
      SG_ASSERT_MSG(attempt < 8, "eager recovery sweep is not converging");
      const std::uint64_t gen = generation_of(owner);
      bool aborted = false;
      for (auto& [client_id, stub] : svc->client_stubs) {
        stub->recover_all();
        if (generation_of(owner) != gen) {
          aborted = true;
          break;
        }
      }
      if (!aborted) break;
      replay_restarts_.fetch_add(1, std::memory_order_relaxed);
      SG_DEBUG("recovery", "eager sweep for " << svc->spec.service << " restarted");
    }
  }

  if (!svc->spec.desc_block) return;

  // T0: wake every thread blocked inside the rebooted component, inheriting
  // the highest priority among them so recovery does not invert priorities.
  std::vector<ThreadId> blocked;
  kernel::Priority top_prio = 1 << 30;
  for (const auto& info : kernel_.reflect_blocked_threads()) {
    const auto stack = kernel_.thread_invocation_stack(info.thd);
    if (std::find(stack.begin(), stack.end(), comp) == stack.end()) continue;
    blocked.push_back(info.thd);
    top_prio = std::min(top_prio, info.prio);
  }
  if (blocked.empty()) return;

  const ThreadId self = kernel_.current_thread();
  kernel::Priority saved_prio = 0;
  const bool boost = (self != kernel::kNoThread);
  if (boost) {
    saved_prio = kernel_.thread_priority(self);
    kernel_.set_thread_priority(self, std::min(saved_prio, top_prio));
  }
  // The service wake adapter delivers through component invokes *from this
  // thread*. If this thread's own invocation stack still holds a frame of
  // the component being rebooted, every such invoke unwinds at entry (the
  // stale-epoch check) before the wake is delivered — and T0 wakes are
  // one-shot: the waiters' registrations died with the server, so a dropped
  // wake is a thread blocked forever. Deliver directly through the kernel in
  // that case; the woken thread unwinds its own stale frames and redoes the
  // blocking call, rebuilding any server-side bookkeeping on the way.
  bool deliver_direct = (self == kernel::kNoThread);
  if (!deliver_direct) {
    const auto stack = kernel_.thread_invocation_stack(self);
    deliver_direct = std::find(stack.begin(), stack.end(), comp) != stack.end();
  }
  std::exception_ptr unwind;
  for (const ThreadId thd : blocked) {
    t0_wakeups_.fetch_add(1, std::memory_order_relaxed);
    kernel_.trace(trace::EventKind::kMechanism, comp,
                  static_cast<std::int32_t>(trace::Mechanism::kT0), 0,
                  static_cast<std::int64_t>(thd));
    if (deliver_direct) {
      kernel_.wakeup(thd, /*recovery_wake=*/true);
      continue;
    }
    try {
      svc->wakeup(thd);
    } catch (const kernel::ServerRebooted&) {
      // A concurrent reboot left another stale frame on our stack and the
      // wake invoke unwound before delivering. Finish the sweep directly —
      // losing the rest of the wakes is never acceptable — then let the
      // unwind continue from here.
      unwind = std::current_exception();
      deliver_direct = true;
      kernel_.wakeup(thd, /*recovery_wake=*/true);
    }
  }
  if (boost) kernel_.set_thread_priority(self, saved_prio);
  if (unwind) std::rethrow_exception(unwind);
}

void RecoveryCoordinator::rebuild_storage() {
  // The republish sweep below touches *every* service's client stubs —
  // state well outside the storage component's own dependency closure — so a
  // scoped recovery domain is not containment enough. Widen to the whole
  // machine first (a no-op at cores==1 and when the domain already escalated);
  // concurrent disjoint recoveries drain before the sweep starts.
  kernel_.escalate_recovery_to_machine(kernel::Kernel::kEscalateStorageRebuild);
  storage_rebuilds_.fetch_add(1, std::memory_order_relaxed);
  const int epoch = kernel_.fault_epoch(storage_.id());
  kernel_.trace(trace::EventKind::kStorageRebuildBegin, storage_.id(), epoch);
  SG_DEBUG("recovery", "storage component rebooted (epoch " << epoch
                       << "): re-materializing G0 from client stubs");
  // G0: every client stub that keeps creator records pushes them back from
  // its own tracked-descriptor state. The stubs are the authoritative copy —
  // the point of G0 is that storage is *redundant* bookkeeping.
  //
  // The record_desc calls below re-enter storage entry points; the armed
  // flip that felled storage has been consumed, so they cannot re-fault. A
  // *fresh* flip landing here defers through on_reboot's pending queue like
  // any other nested fault, and the rebuild restarts when it drains.
  std::size_t republished = 0;
  for (auto& [name, svc] : services_) {
    for (auto& [client_id, stub] : svc.client_stubs) {
      republished += stub->republish_creators();
    }
  }
  // G1 repopulates lazily: its publishers (RamFS file contents, event
  // manager pending counts) notice the storage fault-epoch change at their
  // next handler entry and re-store what they hold in memory. A resource
  // whose in-memory copy is *also* gone surfaces as a degraded fallback at
  // its owner, not here.
  kernel_.trace(trace::EventKind::kStorageRebuildEnd, storage_.id(),
                static_cast<std::int32_t>(republished));
  SG_DEBUG("recovery", "storage rebuild done: " << republished << " creator records");
}

}  // namespace sg::c3
