#include "c3/recovery.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace sg::c3 {

using kernel::CompId;
using kernel::ThreadId;

RecoveryCoordinator::RecoveryCoordinator(kernel::Kernel& kernel, StorageComponent& storage)
    : kernel_(kernel), storage_(storage) {
  kernel_.add_reboot_hook([this](CompId comp) { on_reboot(comp); });
}

void RecoveryCoordinator::register_service(kernel::Component& server, InterfaceSpec spec,
                                           WakeupFn wakeup) {
  spec.validate();
  const std::string service = spec.service;
  SG_ASSERT_MSG(services_.count(service) == 0, "service registered twice: " + service);
  Service& svc = services_[service];
  svc.server = &server;
  svc.spec = std::move(spec);
  svc.wakeup = std::move(wakeup);
  if (svc.spec.desc_is_global || svc.spec.parent == ParentKind::kXCParent) {
    svc.server_stub = std::make_unique<ServerStub>(kernel_, server, svc.spec, storage_);
  }
}

ClientStub& RecoveryCoordinator::client_stub(kernel::Component& client,
                                             const std::string& service) {
  auto it = services_.find(service);
  SG_ASSERT_MSG(it != services_.end(), "unknown service: " + service);
  Service& svc = it->second;
  auto& slot = svc.client_stubs[client.id()];
  if (!slot) {
    slot = std::make_unique<ClientStub>(kernel_, client, svc.server->id(), svc.spec, &storage_);
  }
  return *slot;
}

const InterfaceSpec& RecoveryCoordinator::spec(const std::string& service) const {
  auto it = services_.find(service);
  SG_ASSERT_MSG(it != services_.end(), "unknown service: " + service);
  return it->second.spec;
}

const InterfaceSpec* RecoveryCoordinator::find_spec_by_comp(CompId comp) const {
  for (const auto& [name, svc] : services_) {
    if (svc.server->id() == comp) return &svc.spec;
  }
  return nullptr;
}

kernel::CompId RecoveryCoordinator::server_of(const std::string& service) const {
  auto it = services_.find(service);
  SG_ASSERT_MSG(it != services_.end(), "unknown service: " + service);
  return it->second.server->id();
}

RecoveryCoordinator::Service* RecoveryCoordinator::find_service_by_comp(CompId comp) {
  for (auto& [name, svc] : services_) {
    if (svc.server->id() == comp) return &svc;
  }
  return nullptr;
}

void RecoveryCoordinator::on_reboot(CompId comp) {
  Service* svc = find_service_by_comp(comp);
  if (svc == nullptr) return;  // Not a recovery-managed component.
  ++reboots_handled_;
  SG_DEBUG("recovery", "handling reboot of " << svc->spec.service);

  if (policy_ == RecoveryPolicy::kEager) {
    // C3's eager mode: rebuild every client's descriptors right now, at the
    // faulting thread's (boosted) priority.
    for (auto& [client_id, stub] : svc->client_stubs) stub->recover_all();
  }

  if (!svc->spec.desc_block) return;

  // T0: wake every thread blocked inside the rebooted component, inheriting
  // the highest priority among them so recovery does not invert priorities.
  std::vector<ThreadId> blocked;
  kernel::Priority top_prio = 1 << 30;
  for (const auto& info : kernel_.reflect_blocked_threads()) {
    const auto stack = kernel_.thread_invocation_stack(info.thd);
    if (std::find(stack.begin(), stack.end(), comp) == stack.end()) continue;
    blocked.push_back(info.thd);
    top_prio = std::min(top_prio, info.prio);
  }
  if (blocked.empty()) return;

  const ThreadId self = kernel_.current_thread();
  kernel::Priority saved_prio = 0;
  const bool boost = (self != kernel::kNoThread);
  if (boost) {
    saved_prio = kernel_.thread_priority(self);
    kernel_.set_thread_priority(self, std::min(saved_prio, top_prio));
  }
  for (const ThreadId thd : blocked) {
    ++t0_wakeups_;
    svc->wakeup(thd);
  }
  if (boost) kernel_.set_thread_priority(self, saved_prio);
}

}  // namespace sg::c3
