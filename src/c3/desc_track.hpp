#pragma once

#include <map>
#include <string>
#include <vector>

#include "kernel/types.hpp"

namespace sg::c3 {

inline constexpr kernel::Value kNoParent = 0;  ///< Parent id 0 == no parent / root.

/// Client-side tracking record for one descriptor (the bold black squares in
/// Fig 1(b)). Bounded state: the SM state name, the D_{d_r} metadata named by
/// the IDL annotations, the parent link, and the verbatim creation arguments
/// — never a log of operations (§II-C).
struct TrackedDesc {
  kernel::Value vid = 0;  ///< Client-visible descriptor id (stable across faults).
  kernel::Value sid = 0;  ///< Current server-side id (remapped after recovery).
  std::string state;      ///< Current descriptor state-machine state.
  std::map<std::string, kernel::Value> data;  ///< D_{d_r} tracked metadata.
  kernel::Value parent_vid = kNoParent;
  std::vector<kernel::Value> children;
  kernel::Args creation_args;  ///< Original args of the creation call (for replay).
  std::string created_by;      ///< Which creation fn made this descriptor (replayed on recovery).
  bool faulty = false;         ///< In s_f; needs an R0 walk before next use (T1).
  bool zombie = false;         ///< Closed, retained only because children are live.
  /// Thread currently replaying this descriptor's recovery walk (kNoThread
  /// when idle). The walk's invocations can block — e.g. park at the
  /// supervisor's admission gate during a backoff hold — so other threads
  /// sharing the stub must not treat the cleared `faulty` bit as "recovered"
  /// and invoke with the sid the walk is about to remap.
  kernel::ThreadId recovering = kernel::kNoThread;
};

/// The per-(client, interface) descriptor table a stub owns.
class DescTable {
 public:
  TrackedDesc& create(kernel::Value vid, kernel::Value sid, std::string initial_state,
                      kernel::Args creation_args);

  TrackedDesc* find(kernel::Value vid);
  const TrackedDesc* find(kernel::Value vid) const;
  TrackedDesc* find_by_sid(kernel::Value sid);

  /// Removes a descriptor. With `cascade`, removes the whole child subtree
  /// (C_dr recursive-revocation tracking). Without, the record becomes a
  /// zombie while live children still reference it, and is reaped when the
  /// last child goes.
  void remove(kernel::Value vid, bool cascade);

  /// Transition every live descriptor to s_f (server fault detected).
  void mark_all_faulty();

  std::size_t size() const { return descs_.size(); }
  std::size_t live_count() const;

  /// Stable iteration (vid order) over all records, zombies included.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& [vid, desc] : descs_) fn(desc);
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [vid, desc] : descs_) fn(desc);
  }

  void clear() { descs_.clear(); }

 private:
  void unlink_from_parent(TrackedDesc& desc);
  void reap_if_zombie_done(kernel::Value vid);

  std::map<kernel::Value, TrackedDesc> descs_;
};

}  // namespace sg::c3
