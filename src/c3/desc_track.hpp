#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "c3/ids.hpp"
#include "kernel/types.hpp"

namespace sg::c3 {

inline constexpr kernel::Value kNoParent = 0;  ///< Parent id 0 == no parent / root.

/// Client-side tracking record for one descriptor (the bold black squares in
/// Fig 1(b)). Bounded state: the interned SM state id, the D_{d_r} metadata
/// named by the IDL annotations (a fixed FieldId-indexed array), the parent
/// link, and the verbatim creation arguments — never a log of operations
/// (§II-C).
struct TrackedDesc {
  /// Upper bound on distinct D_{d_r} fields per interface; enforced when the
  /// spec's compiled runtime interns the field names.
  static constexpr int kMaxFields = 8;

  kernel::Value vid = 0;  ///< Client-visible descriptor id (stable across faults).
  StateId state = kStateInitial;  ///< Current descriptor state-machine state.
  kernel::Value parent_vid = kNoParent;
  std::vector<kernel::Value> children;
  kernel::Args creation_args;  ///< Original args of the creation call (for replay).
  FnId created_by = kNoFn;     ///< Which creation fn made this descriptor (replayed on recovery).
  bool faulty = false;         ///< In s_f; needs an R0 walk before next use (T1).
  bool zombie = false;         ///< Closed, retained only because children are live.
  /// Thread currently replaying this descriptor's recovery walk (kNoThread
  /// when idle). The walk's invocations can block — e.g. park at the
  /// supervisor's admission gate during a backoff hold — so other threads
  /// sharing the stub must not treat the cleared `faulty` bit as "recovered"
  /// and invoke with the sid the walk is about to remap.
  kernel::ThreadId recovering = kernel::kNoThread;
  /// Bumped on every state-machine commit. Lets a completing call detect that
  /// another thread's call on this same (shared) descriptor committed while
  /// its own invocation was in flight — client return order inverts server
  /// completion order in that window, so the late returner must defer.
  std::uint64_t commit_seq = 0;

  /// Current server-side id (remapped after recovery). Writes go through
  /// DescTable::set_sid so the table's O(1) sid index stays coherent.
  kernel::Value sid() const { return sid_; }

  // --- D_{d_r} tracked metadata, FieldId-indexed ----------------------------
  bool has_field(FieldId f) const {
    return f >= 0 && f < kMaxFields && (field_mask_ & (1u << f)) != 0;
  }
  kernel::Value field(FieldId f) const { return has_field(f) ? fields_[f] : 0; }
  void set_field(FieldId f, kernel::Value v) {
    fields_[f] = v;
    field_mask_ |= static_cast<std::uint8_t>(1u << f);
  }
  void add_field(FieldId f, kernel::Value v) { set_field(f, field(f) + v); }
  std::uint8_t field_mask() const { return field_mask_; }

 private:
  friend class DescTable;
  kernel::Value sid_ = 0;
  kernel::Value fields_[kMaxFields] = {};
  std::uint8_t field_mask_ = 0;
};

/// The per-(client, interface) descriptor table a stub owns.
///
/// Storage is a slab: records live in recycled slots of a std::deque (stable
/// addresses — outstanding TrackedDesc pointers survive growth), with a
/// free list, an O(1) vid→slot hash index, an O(1) sid→slot reverse index,
/// and generation-tagged handles that detect stale references to recycled
/// slots.
///
/// Concurrency (cores>1): an internal mutex guards the slab *structure* —
/// slot allocation/recycling and the vid/sid indexes — so lookups and
/// create/remove are safe from any thread. The *contents* of a TrackedDesc
/// reached through a returned pointer are not locked: they are owned by the
/// descriptor's active thread (the client handler holding the component's
/// occupancy, the per-descriptor `recovering` walker, or the coordinator's
/// token-holding sweep), exactly the single-writer discipline the commit_seq
/// protocol already encodes. The lock is never held across a kernel call.
class DescTable {
 public:
  /// Generation-tagged reference to a slot. A handle taken before a record
  /// was removed no longer resolves after the slot is recycled.
  struct Handle {
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };

  /// Tracks a descriptor. Re-creating an already-tracked vid is legal
  /// (idempotent creation fns, e.g. mman_get_page on an existing vaddr) and
  /// preserves the record's D_dr fields, parent link, and children.
  /// Asserts vid != 0: descriptor id 0 would silently collide with the
  /// kNoParent sentinel and corrupt parent links.
  TrackedDesc& create(kernel::Value vid, kernel::Value sid, StateId initial_state,
                      kernel::Args creation_args);

  TrackedDesc* find(kernel::Value vid);
  const TrackedDesc* find(kernel::Value vid) const;
  TrackedDesc* find_by_sid(kernel::Value sid);

  /// Remaps a record's server-side id, keeping the sid index coherent.
  void set_sid(TrackedDesc& desc, kernel::Value sid);

  Handle handle_of(const TrackedDesc& desc) const;
  /// nullptr if the handle's slot was recycled (generation mismatch) or dead.
  TrackedDesc* resolve(Handle handle);

  /// Removes a descriptor. With `cascade`, removes the whole child subtree
  /// (C_dr recursive-revocation tracking). Without, the record becomes a
  /// zombie while live children still reference it, and is reaped when the
  /// last child goes.
  void remove(kernel::Value vid, bool cascade);

  /// Transition every live descriptor to s_f (server fault detected).
  void mark_all_faulty();

  std::size_t size() const {
    std::lock_guard<std::mutex> guard(mu_);
    return count_;
  }
  std::size_t live_count() const;
  /// Slots ever allocated (live + recyclable); exposed for the slab tests.
  std::size_t slab_capacity() const {
    std::lock_guard<std::mutex> guard(mu_);
    return slots_.size();
  }

  /// Stable iteration (slot order ≈ creation order) over all records,
  /// zombies included. Unlocked by design — fn may block (recovery walks
  /// invoke through the kernel), so the caller must be the table's owning
  /// thread per the single-writer discipline above.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& slot : slots_) {
      if (slot.live) fn(slot.desc);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& slot : slots_) {
      if (slot.live) fn(slot.desc);
    }
  }

  void clear();

 private:
  struct Slot {
    TrackedDesc desc;
    std::uint32_t gen = 1;
    bool live = false;
  };

  // All require mu_ held.
  void remove_locked(kernel::Value vid, bool cascade);
  TrackedDesc* find_locked(kernel::Value vid);
  void erase_slot(std::uint32_t index);
  void drop_sid_index(kernel::Value sid, std::uint32_t index);
  void unlink_from_parent(TrackedDesc& desc);
  void reap_if_zombie_done(kernel::Value vid);

  mutable std::mutex mu_;  ///< Guards the slab structure (see class comment).
  std::deque<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::unordered_map<kernel::Value, std::uint32_t> by_vid_;
  /// Multimap: distinct records may transiently share a sid across recovery
  /// remaps (e.g. a zombie's stale sid vs. a fresh descriptor's).
  std::unordered_multimap<kernel::Value, std::uint32_t> by_sid_;
  std::size_t count_ = 0;
};

}  // namespace sg::c3
