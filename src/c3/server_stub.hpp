#pragma once

#include <cstdint>

#include "c3/interface_spec.hpp"
#include "c3/storage.hpp"
#include "kernel/component.hpp"
#include "kernel/kernel.hpp"

namespace sg::c3 {

/// The generated *server-side* interface stub. Its job is the G0 mechanism
/// (§III-C): when a post-reboot server returns EINVAL because a global
/// descriptor is missing, the stub queries the storage component for the
/// descriptor's creator, upcalls into that component to recreate it (U0/R0),
/// and then replays the original invocation.
///
/// Installed by interposing on the server component's exported handlers, so
/// the logic runs "in" the server's protection domain like real stub code.
class ServerStub {
 public:
  ServerStub(kernel::Kernel& kernel, kernel::Component& server, const InterfaceSpec& spec,
             StorageComponent& storage);

  ServerStub(const ServerStub&) = delete;
  ServerStub& operator=(const ServerStub&) = delete;

  std::uint64_t g0_recoveries() const { return g0_recoveries_; }
  std::uint64_t g0_misses() const { return g0_misses_; }

 private:
  kernel::Kernel& kernel_;
  kernel::Component& server_;
  const InterfaceSpec& spec_;
  StorageComponent& storage_;
  NsId ns_ = kNoNs;  ///< Interned storage namespace for the service.
  std::uint64_t g0_recoveries_ = 0;
  std::uint64_t g0_misses_ = 0;
};

}  // namespace sg::c3
