#pragma once

#include <cstdint>
#include <functional>

#include "c3/interface_spec.hpp"
#include "c3/storage.hpp"
#include "kernel/component.hpp"
#include "kernel/kernel.hpp"

namespace sg::c3 {

/// The generated *server-side* interface stub. Its job is the G0 mechanism
/// (§III-C): when a post-reboot server returns EINVAL because a global
/// descriptor is missing, the stub queries the storage component for the
/// descriptor's creator, upcalls into that component to recreate it (U0/R0),
/// and then replays the original invocation.
///
/// Installed by interposing on the server component's exported handlers, so
/// the logic runs "in" the server's protection domain like real stub code.
class ServerStub {
 public:
  ServerStub(kernel::Kernel& kernel, kernel::Component& server, const InterfaceSpec& spec,
             StorageComponent& storage);

  ServerStub(const ServerStub&) = delete;
  ServerStub& operator=(const ServerStub&) = delete;

  std::uint64_t g0_recoveries() const { return g0_recoveries_; }
  std::uint64_t g0_misses() const { return g0_misses_; }
  std::uint64_t degraded_misses() const { return degraded_misses_; }

  /// Fires when a G0 record *was found* but the recreation upcall failed —
  /// the substrate had the answer yet recovery still could not use it. This
  /// (unlike a plain miss, which legitimately means "descriptor never
  /// existed") marks the episode's recovery as degraded.
  using DegradedHook = std::function<void(const char* service)>;
  void set_degraded_hook(DegradedHook hook) { degraded_hook_ = std::move(hook); }

 private:
  kernel::Kernel& kernel_;
  kernel::Component& server_;
  const InterfaceSpec& spec_;
  StorageComponent& storage_;
  NsId ns_ = kNoNs;  ///< Interned storage namespace for the service.
  std::uint64_t g0_recoveries_ = 0;
  std::uint64_t g0_misses_ = 0;
  std::uint64_t degraded_misses_ = 0;
  DegradedHook degraded_hook_;
};

}  // namespace sg::c3
