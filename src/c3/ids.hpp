#pragma once

#include <cstdint>

namespace sg::c3 {

/// Dense interned ids for the compiled interface runtime. Every name the
/// IDL-level model speaks in — interface functions, descriptor states,
/// tracked-data fields, storage namespaces — is interned once at
/// finalize/compile time; the per-invocation hot path is pure integer
/// indexing into flat tables from then on.
using FnId = std::int32_t;     ///< Interface function (I_{d_r} member).
using StateId = std::int32_t;  ///< Descriptor SM state (S member).
using FieldId = std::int32_t;  ///< Tracked-data field (D_{d_r} member).
using NsId = std::int32_t;     ///< Storage namespace (G0/G1 registry).

inline constexpr FnId kNoFn = -1;
inline constexpr StateId kNoState = -1;
inline constexpr FieldId kNoField = -1;
inline constexpr NsId kNoNs = -1;

/// s_0 is always interned first, so a fresh descriptor's state id is 0 in
/// every interface's state space.
inline constexpr StateId kStateInitial = 0;

/// Per-function classification bits, packed from the sm_* IDL annotations.
struct FnFlags {
  enum : std::uint8_t {
    kCreation = 1 << 0,
    kTerminal = 1 << 1,
    kBlock = 1 << 2,
    kWakeup = 1 << 3,
    kConsume = 1 << 4,
  };
};

}  // namespace sg::c3
