#include "c3/client_stub.hpp"

#include "util/assert.hpp"
#include "util/log.hpp"

namespace sg::c3 {

using kernel::Args;
using kernel::CallCtx;
using kernel::Value;

namespace {
constexpr int kMaxRedos = 16;
constexpr int kMaxRecoveryAttempts = 4;
constexpr int kMaxParentDepth = 64;

/// Internal signal: a recovery step itself hit a server fault; the outer
/// ensure_recovered loop restarts the walk (bounded).
struct RecoveryFaulted {};
}  // namespace

std::string ClientStub::recreate_fn_name(const std::string& service) {
  return "sg_recreate_" + service;
}

ClientStub::ClientStub(kernel::Kernel& kernel, kernel::Component& client, kernel::CompId server,
                       const InterfaceSpec& spec, StorageComponent* storage)
    : kernel_(kernel), client_(client), server_(server), spec_(spec), storage_(storage) {
  SG_ASSERT_MSG(spec_.sm.finalized(), spec_.service + ": spec not finalized");
  if (spec_.desc_is_global || spec_.resc_has_data || spec_.parent == ParentKind::kXCParent) {
    SG_ASSERT_MSG(storage_ != nullptr, spec_.service + ": G0/G1 interface needs a storage component");
  }
  last_epoch_ = kernel_.fault_epoch(server_);
  // U0: export the recreation upcall on the client so server stubs (G0) and
  // dependent services (XCParent) can rebuild descriptors this client created.
  const std::string upcall = recreate_fn_name(spec_.service);
  if (!client_.exports(upcall)) {
    client_.export_fn(upcall, [this](CallCtx&, const Args& args) -> Value {
      SG_ASSERT(args.size() == 1);
      ++stats_.upcall_recreates;
      return recreate_by_vid(args[0]);
    });
  }
}

Value ClientStub::call(const std::string& fn_name, const Args& args) {
  const FnSpec& fn = spec_.fn(fn_name);
  ++stats_.calls;

  // A server micro-rebooted on behalf of *another* client leaves no fault
  // flag for us — detect it by epoch before touching descriptors.
  if (kernel_.fault_epoch(server_) != last_epoch_) fault_update();

  for (int redo = 0; redo < kMaxRedos; ++redo) {
    Args wire = args;
    TrackedDesc* desc = nullptr;

    // --- pre-invocation descriptor bookkeeping ---------------------------
    const int desc_idx = fn.desc_param();
    if (desc_idx >= 0) {
      desc = table_.find(args[static_cast<std::size_t>(desc_idx)]);
      if (desc != nullptr) {
        // On-demand (T1): recover the touched descriptor at this thread's
        // priority, parents first (D1).
        ensure_recovered(*desc);
        if (spec_.sm.is_terminal(fn_name) && spec_.desc_close_children) {
          recover_subtree(*desc);  // D0.
        }
        wire[static_cast<std::size_t>(desc_idx)] = desc->sid;
        // SM-based fault detection: reject invalid transition attempts.
        // Blocking fns are exempt: a second thread may legally contend while
        // the descriptor sits in a held state (completion order, not
        // invocation order, is what the machine models).
        if (!spec_.sm.is_block(fn_name) && !spec_.sm.valid(desc->state, fn_name)) {
          ++stats_.invalid_transitions;
          SG_DEBUG("stub", spec_.service << "." << fn_name << " invalid from state "
                                         << desc->state);
          return kernel::kErrInval;
        }
      }
      // Untracked id on a global interface: a foreign descriptor — pass it
      // through; the server stub's G0 path owns its recovery.
    }
    const int parent_idx = fn.parent_param();
    if (parent_idx >= 0) {
      TrackedDesc* parent = table_.find(args[static_cast<std::size_t>(parent_idx)]);
      if (parent != nullptr) {
        ensure_recovered(*parent);
        wire[static_cast<std::size_t>(parent_idx)] = parent->sid;
      }
    }

    // --- the invocation ----------------------------------------------------
    // The epoch our wire ids were translated against. Per-call, NOT the
    // shared last_epoch_: another thread driving this same stub may
    // fault_update() while our invocation is in flight, which would make a
    // stale EINVAL look legitimate below.
    const int wire_epoch = kernel_.fault_epoch(server_);
    const kernel::InvokeResult res = kernel_.invoke(client_.id(), server_, fn_name, wire);
    if (res.fault) {
      ++stats_.redos;
      fault_update();
      continue;  // goto redo (Fig 4).
    }
    // Erroneous-return-value-aware stub logic (§III-C): EINVAL for a
    // descriptor we track is legitimate only if the server has not been
    // micro-rebooted behind our back since we translated the id — another
    // client's fault may have wiped it between our epoch check and this
    // invocation. Recover (unless a concurrent caller already did) and redo.
    if (res.ret == kernel::kErrInval && desc != nullptr &&
        kernel_.fault_epoch(server_) != wire_epoch) {
      ++stats_.redos;
      if (kernel_.fault_epoch(server_) != last_epoch_) fault_update();
      continue;
    }

    // --- post-invocation tracking ------------------------------------------
    track_result(fn, args, res.ret);
    return res.ret;
  }
  throw kernel::SystemCrash(kernel::CrashKind::kDoubleFault, server_,
                            spec_.service + "." + fn_name + ": redo limit exceeded");
}

void ClientStub::fault_update() {
  const int epoch = kernel_.fault_epoch(server_);
  if (epoch == last_epoch_) return;
  last_epoch_ = epoch;
  table_.mark_all_faulty();
}

void ClientStub::recover_all() {
  fault_update();
  table_.for_each([this](TrackedDesc& desc) {
    if (!desc.zombie) ensure_recovered(desc);
  });
}

Value ClientStub::recreate_by_vid(Value vid) {
  TrackedDesc* desc = table_.find(vid);
  if (desc == nullptr) return kernel::kErrInval;
  fault_update();
  desc->faulty = true;  // Force a fresh replay even if our epoch was current.
  ensure_recovered(*desc);
  return kernel::kOk;
}

void ClientStub::ensure_recovered(TrackedDesc& desc, int depth) {
  // Another thread driving this same stub may be mid-walk on this descriptor
  // (the walk's invocations can block — e.g. park at the supervisor's
  // admission gate). Its sid is about to be remapped; wait for the walk
  // instead of taking the cleared `faulty` bit at face value. park_tick (not
  // yield) so a lower-priority walk owner gets the CPU to finish its walk.
  while (desc.recovering != kernel::kNoThread &&
         desc.recovering != kernel_.current_thread()) {
    kernel_.park_tick();
  }
  if (!desc.faulty) return;
  SG_ASSERT_MSG(depth < kMaxParentDepth, spec_.service + ": descriptor parent chain too deep");
  desc.faulty = false;  // Clear first: walks re-enter call paths via parents.
  const kernel::ThreadId walk_owner = desc.recovering;
  desc.recovering = kernel_.current_thread();
  struct WalkGuard {
    TrackedDesc& desc;
    kernel::ThreadId restore;
    ~WalkGuard() { desc.recovering = restore; }
  } guard{desc, walk_owner};
  for (int attempt = 0; attempt < kMaxRecoveryAttempts; ++attempt) {
    try {
      recover_once(desc, depth);
      ++stats_.recoveries;
      return;
    } catch (const RecoveryFaulted&) {
      // The server faulted *while we were recovering it*; every descriptor
      // is s_f again. Restart this descriptor's walk.
      fault_update();
      desc.faulty = false;
    }
  }
  throw kernel::SystemCrash(kernel::CrashKind::kDoubleFault, server_,
                            spec_.service + ": recovery kept faulting");
}

void ClientStub::recover_once(TrackedDesc& desc, int depth) {
  // D1: parents strictly before children, root-to-leaf.
  if (desc.parent_vid != kNoParent) {
    TrackedDesc* parent = table_.find(desc.parent_vid);
    if (parent != nullptr) {
      ensure_recovered(*parent, depth + 1);
    }
    // An untracked parent id is a cross-component (XCParent) or global
    // parent: its creator's stub recovers it via the server's G0 path.
  }

  // Replay the descriptor's own creation fn with the id hint appended
  // (stable descriptor ids).
  const FnSpec& create = desc.created_by.empty() ? spec_.creation_fn() : spec_.fn(desc.created_by);
  Args create_args = build_replay_args(create, desc);
  create_args.push_back(desc.sid);
  const Value new_sid = recovery_invoke(create.name, create_args);
  if (new_sid < 0) {
    throw kernel::SystemCrash(kernel::CrashKind::kDoubleFault, server_,
                              spec_.service + ": creation replay returned " +
                                  std::to_string(new_sid));
  }
  desc.sid = new_sid;

  // sm_restore fns re-establish tracked descriptor data (e.g., tlseek).
  for (const auto& restore_fn : spec_.sm.restore_fns()) {
    const FnSpec& fn = spec_.fn(restore_fn);
    recovery_invoke(fn.name, build_replay_args(fn, desc));
    ++stats_.walk_fns;
  }

  // R0: the precomputed shortest walk from s0 to the expected state.
  const std::string expected = desc.state;
  for (const auto& walk_fn : spec_.sm.recovery_walk(expected)) {
    const FnSpec& fn = spec_.fn(walk_fn);
    recovery_invoke(fn.name, build_replay_args(fn, desc));
    ++stats_.walk_fns;
  }
  desc.state = spec_.sm.reached_state(expected);
}

void ClientStub::recover_subtree(TrackedDesc& desc) {
  for (const Value child_vid : desc.children) {
    TrackedDesc* child = table_.find(child_vid);
    if (child == nullptr) continue;
    ensure_recovered(*child);
    recover_subtree(*child);
  }
}

Args ClientStub::build_replay_args(const FnSpec& fn, const TrackedDesc& desc) {
  Args out;
  out.reserve(fn.params.size());
  for (const auto& param : fn.params) {
    switch (param.role) {
      case ParamRole::kDesc:
        out.push_back(desc.sid);
        break;
      case ParamRole::kParentDesc: {
        Value parent_sid = desc.parent_vid;
        if (const TrackedDesc* parent = table_.find(desc.parent_vid)) parent_sid = parent->sid;
        out.push_back(parent_sid);
        break;
      }
      case ParamRole::kDescData: {
        auto it = desc.data.find(param.name);
        out.push_back(it == desc.data.end() ? 0 : it->second);
        break;
      }
      case ParamRole::kClientId:
        out.push_back(client_.id());
        break;
      case ParamRole::kPlain:
        SG_ASSERT_MSG(false, spec_.service + "." + fn.name + ": unreplayable plain param '" +
                                 param.name + "' (compiler validation should have caught this)");
    }
  }
  return out;
}

Value ClientStub::recovery_invoke(const std::string& fn, const Args& args) {
  const kernel::InvokeResult res = kernel_.invoke(client_.id(), server_, fn, args);
  if (res.fault) throw RecoveryFaulted{};
  return res.ret;
}

void ClientStub::track_result(const FnSpec& fn, const Args& args, Value ret) {
  if (spec_.sm.is_creation(fn.name)) {
    if (ret < 0) return;  // Failed creation: nothing to track.
    ++stats_.tracked_creates;
    TrackedDesc& desc = table_.create(ret, ret, spec_.sm.state_after_creation(fn.name), args);
    desc.created_by = fn.name;
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      const ParamSpec& param = fn.params[i];
      if (param.role == ParamRole::kDescData) desc.data[param.name] = args[i];
      if (param.role == ParamRole::kParentDesc) {
        desc.parent_vid = args[i];
        if (TrackedDesc* parent = table_.find(args[i])) parent->children.push_back(desc.vid);
      }
    }
    if (fn.ret_is_desc && !fn.ret_data_name.empty()) desc.data[fn.ret_data_name] = ret;
    if ((spec_.desc_is_global || spec_.parent == ParentKind::kXCParent) && storage_ != nullptr) {
      // G0 (and XCParent upcall routing): remember who created this
      // descriptor so the server stub can upcall for its recreation.
      storage_->record_desc(spec_.service, desc.vid,
                            {client_.id(), desc.parent_vid, desc.data});
    }
    return;
  }

  TrackedDesc* desc = nullptr;
  const int desc_idx = fn.desc_param();
  if (desc_idx >= 0) desc = table_.find(args[static_cast<std::size_t>(desc_idx)]);
  if (desc == nullptr) return;  // Foreign/untracked descriptor.

  if (spec_.sm.is_terminal(fn.name)) {
    if (ret < 0) return;
    const Value vid = desc->vid;
    if ((spec_.desc_is_global || spec_.parent == ParentKind::kXCParent) && storage_ != nullptr) {
      // Erase the creator records for the whole tracked subtree so stale
      // entries cannot route G0 upcalls for revoked descriptors.
      std::function<void(const TrackedDesc&)> erase_records = [&](const TrackedDesc& d) {
        storage_->erase_desc(spec_.service, d.vid);
        if (!spec_.desc_close_children) return;
        for (const Value child : d.children) {
          if (const TrackedDesc* child_desc = table_.find(child)) erase_records(*child_desc);
        }
      };
      erase_records(*desc);
    }
    table_.remove(vid, spec_.desc_close_children);
    return;
  }

  if (ret < 0) return;  // Errors do not transition descriptor state.
  ++stats_.transitions;
  desc->state = spec_.sm.next_state(desc->state, fn.name);
  for (std::size_t i = 0; i < fn.params.size(); ++i) {
    if (fn.params[i].role == ParamRole::kDescData) desc->data[fn.params[i].name] = args[i];
  }
  if (fn.ret_adds_to.has_value() && ret > 0) desc->data[*fn.ret_adds_to] += ret;
}

}  // namespace sg::c3
