#include "c3/client_stub.hpp"

#include <functional>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace sg::c3 {

using kernel::Args;
using kernel::CallCtx;
using kernel::Value;

namespace {
constexpr int kMaxRedos = 16;
constexpr int kMaxRecoveryAttempts = 4;
constexpr int kMaxParentDepth = 64;

/// Internal signal: a recovery step itself hit a server fault; the outer
/// ensure_recovered loop restarts the walk (bounded).
struct RecoveryFaulted {};
}  // namespace

ClientStub::TestKnobs ClientStub::test_knobs;

std::string ClientStub::recreate_fn_name(const std::string& service) {
  return "sg_recreate_" + service;
}

ClientStub::ClientStub(kernel::Kernel& kernel, kernel::Component& client, kernel::CompId server,
                       const InterfaceSpec& spec, StorageComponent* storage)
    : kernel_(kernel),
      client_(client),
      server_(server),
      spec_(spec),
      rt_(spec.compiled()),
      storage_(storage) {
  SG_ASSERT_MSG(spec_.sm.finalized(), spec_.service + ": spec not finalized");
  records_creators_ = spec_.desc_is_global || spec_.parent == ParentKind::kXCParent;
  if (records_creators_ || spec_.resc_has_data) {
    SG_ASSERT_MSG(storage_ != nullptr, spec_.service + ": G0/G1 interface needs a storage component");
  }
  if (storage_ != nullptr) storage_ns_ = storage_->intern_ns(spec_.service);
  last_epoch_ = kernel_.fault_epoch(server_);
  // U0: export the recreation upcall on the client so server stubs (G0) and
  // dependent services (XCParent) can rebuild descriptors this client created.
  const std::string upcall = recreate_fn_name(spec_.service);
  if (!client_.exports(upcall)) {
    client_.export_fn(upcall, [this](CallCtx&, const Args& args) -> Value {
      SG_ASSERT(args.size() == 1);
      ++stats_.upcall_recreates;
      return recreate_by_vid(args[0]);
    });
  }
}

Value ClientStub::call(const std::string& fn_name, const Args& args) {
  return call_id(resolve(fn_name), args);
}

FnId ClientStub::resolve(const std::string& fn) {
  const FnId id = rt_.fn_id(fn);
  SG_ASSERT_MSG(id != kNoFn, spec_.service + ": unknown interface fn " + fn);
  return id;
}

Value ClientStub::call_id(FnId fn_id, const Args& args) {
  const CompiledFn& fn = rt_.fn(fn_id);
  ++stats_.calls;

  // A server micro-rebooted on behalf of *another* client leaves no fault
  // flag for us — detect it by epoch before touching descriptors.
  if (kernel_.fault_epoch(server_) != last_epoch_) fault_update();

  for (int redo = 0; redo < kMaxRedos; ++redo) {
    Args wire = args;
    TrackedDesc* desc = nullptr;

    // --- pre-invocation descriptor bookkeeping ---------------------------
    if (fn.desc_idx >= 0) {
      desc = table_.find(args[static_cast<std::size_t>(fn.desc_idx)]);
      if (desc != nullptr) {
        // On-demand (T1): recover the touched descriptor at this thread's
        // priority, parents first (D1).
        ensure_recovered(*desc);
        if (fn.is_terminal() && spec_.desc_close_children) {
          recover_subtree(*desc);  // D0.
        }
        wire[static_cast<std::size_t>(fn.desc_idx)] = desc->sid();
        // SM-based fault detection: reject invalid transition attempts.
        // Blocking fns are exempt: a second thread may legally contend while
        // the descriptor sits in a held state (completion order, not
        // invocation order, is what the machine models). Redo iterations are
        // exempt too: the gate vets fresh client intent, but a redo retries
        // an attempt that was already valid when issued — and whose faulted
        // try may have completed server-side (fault between handler
        // completion and return), legitimately moving σ past the transition.
        // The server's own handler decides whether the duplicate is benign.
        if (redo == 0 && !fn.is_block() && !rt_.valid(desc->state, fn_id)) {
          ++stats_.invalid_transitions;
          SG_DEBUG("stub", spec_.service << "." << fn.decl->name << " invalid from state "
                                         << spec_.sm.state_name(desc->state));
          return kernel::kErrInval;
        }
      }
      // Untracked id on a global interface: a foreign descriptor — pass it
      // through; the server stub's G0 path owns its recovery.
    }
    if (fn.parent_idx >= 0) {
      TrackedDesc* parent = table_.find(args[static_cast<std::size_t>(fn.parent_idx)]);
      if (parent != nullptr) {
        ensure_recovered(*parent);
        wire[static_cast<std::size_t>(fn.parent_idx)] = parent->sid();
      }
    }

    // --- the invocation ----------------------------------------------------
    // The epoch our wire ids were translated against. Per-call, NOT the
    // shared last_epoch_: another thread driving this same stub may
    // fault_update() while our invocation is in flight, which would make a
    // stale EINVAL look legitimate below.
    const int wire_epoch = kernel_.fault_epoch(server_);
    const std::uint64_t pre_seq = desc != nullptr ? desc->commit_seq : 0;
    const kernel::InvokeResult res = kernel_.invoke(client_.id(), server_, fn.decl->name, wire);
    if (res.fault) {
      ++stats_.redos;
      fault_update();
      continue;  // goto redo (Fig 4).
    }
    // Erroneous-return-value-aware stub logic (§III-C): EINVAL for a
    // descriptor we track is legitimate only if the server has not been
    // micro-rebooted behind our back since we translated the id — another
    // client's fault may have wiped it between our epoch check and this
    // invocation. Recover (unless a concurrent caller already did) and redo.
    // wire_epoch alone is not enough: if the server crashes again between
    // this iteration's recovery walk and the id translation (the thread can
    // park inside the walk and wake on the very tick of the new crash),
    // wire_epoch is read post-crash and matches fault_epoch even though the
    // walk ran against the previous incarnation. last_epoch_ still holds the
    // epoch the walk absorbed, so comparing it catches that window.
    if (res.ret == kernel::kErrInval && desc != nullptr &&
        (kernel_.fault_epoch(server_) != wire_epoch ||
         (!test_knobs.disable_epoch_redo_check &&
          kernel_.fault_epoch(server_) != last_epoch_))) {
      ++stats_.redos;
      if (kernel_.fault_epoch(server_) != last_epoch_) fault_update();
      continue;
    }

    // --- post-invocation tracking ------------------------------------------
    track_result(fn_id, fn, args, res.ret, pre_seq);
    return res.ret;
  }
  throw kernel::SystemCrash(kernel::CrashKind::kDoubleFault, server_,
                            spec_.service + "." + fn.decl->name + ": redo limit exceeded");
}

void ClientStub::fault_update() {
  const int epoch = kernel_.fault_epoch(server_);
  if (epoch == last_epoch_) return;
  last_epoch_ = epoch;
  table_.mark_all_faulty();
}

void ClientStub::recover_all() {
  fault_update();
  table_.for_each([this](TrackedDesc& desc) {
    if (!desc.zombie) ensure_recovered(desc);
  });
}

Value ClientStub::recreate_by_vid(Value vid) {
  TrackedDesc* desc = table_.find(vid);
  if (desc == nullptr) return kernel::kErrInval;
  fault_update();
  desc->faulty = true;  // Force a fresh replay even if our epoch was current.
  kernel_.trace(trace::EventKind::kMechanism, server_,
                static_cast<std::int32_t>(trace::Mechanism::kU0), 0, vid);
  ensure_recovered(*desc);
  return kernel::kOk;
}

void ClientStub::ensure_recovered(TrackedDesc& desc, int depth) {
  // Another thread driving this same stub may be mid-walk on this descriptor
  // (the walk's invocations can block — e.g. park at the supervisor's
  // admission gate). Its sid is about to be remapped; wait for the walk
  // instead of taking the cleared `faulty` bit at face value. park_tick (not
  // yield) so a lower-priority walk owner gets the CPU to finish its walk.
  while (!test_knobs.disable_walk_guard && desc.recovering != kernel::kNoThread &&
         desc.recovering != kernel_.current_thread()) {
    kernel_.park_tick();
  }
  if (!desc.faulty) return;
  SG_ASSERT_MSG(depth < kMaxParentDepth, spec_.service + ": descriptor parent chain too deep");
  kernel_.trace(trace::EventKind::kMechanism, server_,
                static_cast<std::int32_t>(trace::Mechanism::kT1), 0, desc.vid);
  desc.faulty = false;  // Clear first: walks re-enter call paths via parents.
  const kernel::ThreadId walk_owner = desc.recovering;
  desc.recovering = kernel_.current_thread();
  struct WalkGuard {
    TrackedDesc& desc;
    kernel::ThreadId restore;
    ~WalkGuard() { desc.recovering = restore; }
  } guard{desc, walk_owner};
  for (int attempt = 0; attempt < kMaxRecoveryAttempts; ++attempt) {
    try {
      recover_once(desc, depth);
      ++stats_.recoveries;
      return;
    } catch (const RecoveryFaulted&) {
      // The server faulted *while we were recovering it*; every descriptor
      // is s_f again. Restart this descriptor's walk.
      kernel_.trace(trace::EventKind::kWalkAbort, server_, 0, 0, desc.vid);
      fault_update();
      desc.faulty = false;
    }
  }
  throw kernel::SystemCrash(kernel::CrashKind::kDoubleFault, server_,
                            spec_.service + ": recovery kept faulting");
}

void ClientStub::recover_once(TrackedDesc& desc, int depth) {
  const StateId expected = desc.state;
  kernel_.trace(trace::EventKind::kWalkBegin, server_, expected, rt_.walk_land(expected),
                desc.vid);

  // D1: parents strictly before children, root-to-leaf.
  if (desc.parent_vid != kNoParent) {
    TrackedDesc* parent = table_.find(desc.parent_vid);
    if (parent != nullptr) {
      if (parent->faulty) {
        kernel_.trace(trace::EventKind::kMechanism, server_,
                      static_cast<std::int32_t>(trace::Mechanism::kD1), 0, parent->vid);
      }
      ensure_recovered(*parent, depth + 1);
    }
    // An untracked parent id is a cross-component (XCParent) or global
    // parent: its creator's stub recovers it via the server's G0 path.
  }

  // Replay the descriptor's own creation fn with the id hint appended
  // (stable descriptor ids).
  const FnId create = desc.created_by != kNoFn ? desc.created_by : rt_.creation_fn();
  Args create_args = build_replay_args(rt_.fn(create), desc);
  create_args.push_back(desc.sid());
  const Value new_sid = recovery_invoke(create, create_args);
  if (new_sid < 0) {
    throw kernel::SystemCrash(kernel::CrashKind::kDoubleFault, server_,
                              spec_.service + ": creation replay returned " +
                                  std::to_string(new_sid));
  }
  table_.set_sid(desc, new_sid);

  // sm_restore fns re-establish tracked descriptor data (e.g., tlseek).
  for (const FnId restore_fn : rt_.restore_fns()) {
    recovery_invoke(restore_fn, build_replay_args(rt_.fn(restore_fn), desc));
    ++stats_.walk_fns;
  }

  // R0: the precomputed shortest walk from s0 to the expected state.
  StateId cur = kStateInitial;
  for (const FnId walk_fn : rt_.recovery_walk(expected)) {
    const StateId next = rt_.fn(walk_fn).next_state;
    kernel_.trace(trace::EventKind::kWalkStep, server_, cur, next, desc.vid, walk_fn);
    recovery_invoke(walk_fn, build_replay_args(rt_.fn(walk_fn), desc));
    ++stats_.walk_fns;
    cur = next;
  }
  desc.state = rt_.walk_land(expected);
  kernel_.trace(trace::EventKind::kWalkEnd, server_, desc.state, 0, desc.vid);
}

void ClientStub::recover_subtree(TrackedDesc& desc) {
  for (const Value child_vid : desc.children) {
    TrackedDesc* child = table_.find(child_vid);
    if (child == nullptr) continue;
    if (child->faulty) {
      kernel_.trace(trace::EventKind::kMechanism, server_,
                    static_cast<std::int32_t>(trace::Mechanism::kD0), 0, child->vid);
    }
    ensure_recovered(*child);
    recover_subtree(*child);
  }
}

Args ClientStub::build_replay_args(const CompiledFn& fn, const TrackedDesc& desc) {
  Args out;
  out.reserve(fn.decl->params.size());
  for (std::size_t i = 0; i < fn.decl->params.size(); ++i) {
    const ParamSpec& param = fn.decl->params[i];
    switch (param.role) {
      case ParamRole::kDesc:
        out.push_back(desc.sid());
        break;
      case ParamRole::kParentDesc: {
        Value parent_sid = desc.parent_vid;
        if (const TrackedDesc* parent = table_.find(desc.parent_vid)) parent_sid = parent->sid();
        out.push_back(parent_sid);
        break;
      }
      case ParamRole::kDescData:
        out.push_back(desc.field(fn.param_fields[i]));
        break;
      case ParamRole::kClientId:
        out.push_back(client_.id());
        break;
      case ParamRole::kPlain:
        SG_ASSERT_MSG(false, spec_.service + "." + fn.decl->name + ": unreplayable plain param '" +
                                 param.name + "' (compiler validation should have caught this)");
    }
  }
  return out;
}

Value ClientStub::recovery_invoke(FnId fn, const Args& args) {
  const kernel::InvokeResult res =
      kernel_.invoke(client_.id(), server_, rt_.fn(fn).decl->name, args);
  if (res.fault) throw RecoveryFaulted{};
  return res.ret;
}

std::size_t ClientStub::republish_creators() {
  if (!records_creators_ || storage_ == nullptr) return 0;
  std::size_t count = 0;
  table_.for_each([this, &count](TrackedDesc& desc) {
    if (desc.zombie) return;
    record_creator(desc);
    ++count;
  });
  return count;
}

void ClientStub::record_creator(const TrackedDesc& desc) {
  // G0 (and XCParent upcall routing): remember who created this descriptor
  // so the server stub can upcall for its recreation. The record's string
  // meta map is rebuilt from the interned fields here, off the hot path.
  StorageComponent::DescRecord record{client_.id(), desc.parent_vid, {}};
  for (FieldId f = 0; f < static_cast<FieldId>(rt_.field_count()); ++f) {
    if (desc.has_field(f)) record.meta[rt_.field_name(f)] = desc.field(f);
  }
  storage_->record_desc(storage_ns_, desc.vid, std::move(record));
}

void ClientStub::track_result(FnId fn_id, const CompiledFn& fn, const Args& args, Value ret,
                              std::uint64_t pre_seq) {
  if (fn.is_creation()) {
    if (ret < 0) return;  // Failed creation: nothing to track.
    ++stats_.tracked_creates;
    TrackedDesc& desc = table_.create(ret, ret, kStateInitial, args);
    desc.created_by = fn_id;
    for (std::size_t i = 0; i < fn.param_fields.size(); ++i) {
      if (fn.param_fields[i] != kNoField) desc.set_field(fn.param_fields[i], args[i]);
      if (fn.decl->params[i].role == ParamRole::kParentDesc) {
        desc.parent_vid = args[i];
        if (TrackedDesc* parent = table_.find(args[i])) parent->children.push_back(desc.vid);
      }
    }
    if (fn.ret_field != kNoField) desc.set_field(fn.ret_field, ret);
    if (records_creators_ && storage_ != nullptr) record_creator(desc);
    return;
  }

  TrackedDesc* desc = nullptr;
  if (fn.desc_idx >= 0) desc = table_.find(args[static_cast<std::size_t>(fn.desc_idx)]);
  if (desc == nullptr) return;  // Foreign/untracked descriptor.

  if (fn.is_terminal()) {
    if (ret < 0) return;
    const Value vid = desc->vid;
    if (records_creators_ && storage_ != nullptr) {
      // Erase the creator records for the whole tracked subtree so stale
      // entries cannot route G0 upcalls for revoked descriptors.
      std::function<void(const TrackedDesc&)> erase_records = [&](const TrackedDesc& d) {
        storage_->erase_desc(storage_ns_, d.vid);
        if (!spec_.desc_close_children) return;
        for (const Value child : d.children) {
          if (const TrackedDesc* child_desc = table_.find(child)) erase_records(*child_desc);
        }
      };
      erase_records(*desc);
    }
    table_.remove(vid, spec_.desc_close_children);
    return;
  }

  if (ret < 0) return;  // Errors do not transition descriptor state.
  // Shared-descriptor completion ordering: client *return* order can invert
  // server completion order — a blocking call woken by our own invocation
  // (release wakes take) finishes server-side after us but commits its state
  // here before we resume. If another call committed on this descriptor while
  // ours was in flight, that commit is the newer truth and ours must defer,
  // or the SM would record a held lock as free and reject the owner's next
  // call. Blocking fns always commit: being woken orders them last.
  if (!fn.is_block() && desc->commit_seq != pre_seq) {
    ++stats_.deferred_commits;
    SG_DEBUG("stub", spec_.service << "." << fn.decl->name
                                   << " commit deferred to racing completion on vid "
                                   << desc->vid);
    return;
  }
  ++desc->commit_seq;
  ++stats_.transitions;
  kernel_.trace(trace::EventKind::kDescSigma, server_, desc->state, fn.next_state, desc->vid,
                fn_id);
  desc->state = fn.next_state;
  for (std::size_t i = 0; i < fn.param_fields.size(); ++i) {
    if (fn.param_fields[i] != kNoField) desc->set_field(fn.param_fields[i], args[i]);
  }
  if (fn.ret_add_field != kNoField && ret > 0) desc->add_field(fn.ret_add_field, ret);
}

}  // namespace sg::c3
